"""Tests for features, MRR, BDT, ground-truth generation and UTune."""

import pytest

from repro.common.exceptions import ConfigurationError, NotFittedError
from repro.core.knobs import SELECTION_POOL
from repro.datasets import load_dataset, make_blobs, make_grid_clusters, make_uniform
from repro.tuning import (
    GroundTruthRecord,
    UTune,
    bdt_predict,
    evaluate_bdt,
    extract_features,
    feature_names,
    generate_ground_truth,
    label_task,
    mean_reciprocal_rank,
    reciprocal_rank,
)
from repro.tuning.training import records_to_training_arrays


class TestFeatureExtraction:
    def test_basic_features_exact(self):
        X, _ = make_blobs(200, 7, 4, seed=0)
        features = extract_features(X, 9)
        assert features.values["n"] == 200
        assert features.values["d"] == 7
        assert features.values["k"] == 9

    def test_cumulative_feature_sets(self):
        assert len(feature_names("basic")) == 3
        assert len(feature_names("tree")) == 8
        assert len(feature_names("leaf")) == 14

    def test_unknown_set_rejected(self):
        with pytest.raises(ConfigurationError):
            feature_names("everything")

    def test_vector_order_matches_names(self):
        X, _ = make_blobs(150, 3, 3, seed=1)
        features = extract_features(X, 5)
        vec = features.vector("leaf")
        assert vec[0] == 150 and vec[1] == 5 and vec[2] == 3

    def test_assembled_data_has_smaller_leaf_radii_feature(self):
        tight = make_grid_clusters(500, 2, side=4, jitter=0.005, seed=2)
        loose = make_uniform(500, 2, seed=2)
        f_tight = extract_features(tight, 5).values["leaf_radius_mean"]
        f_loose = extract_features(loose, 5).values["leaf_radius_mean"]
        assert f_tight < f_loose

    def test_imbalance_features_informative(self):
        # Leaf-depth statistics must reflect the tree, not a constant
        # (regression guard: these once used bottom-up heights, all zero).
        X, _ = make_blobs(400, 3, 5, seed=7)
        features = extract_features(X, 5)
        assert features.values["height_mean"] > 0.0

    def test_prebuilt_tree_reused(self):
        from repro.indexes.ball_tree import BallTree

        X, _ = make_blobs(100, 2, 2, seed=3)
        tree = BallTree(X, capacity=10)
        features = extract_features(X, 3, tree=tree)
        assert features.values["n"] == 100


class TestMRR:
    def test_reciprocal_rank_positions(self):
        ranking = ["a", "b", "c"]
        assert reciprocal_rank(ranking, "a") == 1.0
        assert reciprocal_rank(ranking, "b") == 0.5
        assert reciprocal_rank(ranking, "c") == pytest.approx(1 / 3)

    def test_absent_prediction_scores_zero(self):
        assert reciprocal_rank(["a", "b"], "z") == 0.0

    def test_mean(self):
        score = mean_reciprocal_rank([["a", "b"], ["a", "b"]], ["a", "b"])
        assert score == pytest.approx(0.75)

    def test_empty(self):
        assert mean_reciprocal_rank([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_reciprocal_rank([["a"]], [])


class TestBDT:
    def test_low_dimensional_uses_index(self):
        assert bdt_predict(1000, 10, 2).index == "pure"

    def test_high_dimensional_big_k_uses_yinyang(self):
        config = bdt_predict(1000, 100, 50)
        assert config.bound == "yinyang" and config.index == "none"

    def test_high_dimensional_small_k_uses_hamerly(self):
        assert bdt_predict(1000, 10, 50).bound == "hamerly"


@pytest.fixture(scope="module")
def tiny_records():
    tasks = []
    for name, n in [("NYC-Taxi", 500), ("Covtype", 400), ("Mnist", 150)]:
        X = load_dataset(name, n=n, seed=0)
        for k in [4, 10]:
            tasks.append((name, X, k))
    return generate_ground_truth(tasks, selective=True, max_iter=4, seed=0)


class TestGroundTruthGeneration:
    def test_record_structure(self, tiny_records):
        record = tiny_records[0]
        assert set(record.bound_ranking) == set(SELECTION_POOL)
        assert record.best_index in ("none", "pure", "single", "multiple")
        assert record.generation_time > 0
        assert "n" in record.features

    def test_rankings_sorted_by_timing(self, tiny_records):
        for record in tiny_records:
            times = [record.timings[b] for b in record.bound_ranking]
            assert times == sorted(times)

    def test_selective_runs_fewer_configurations(self):
        X = load_dataset("KeggDirect", n=400, seed=1)
        selective = label_task("kegg", X, 8, selective=True, max_iter=4)
        full = label_task("kegg", X, 8, selective=False, max_iter=4)
        # Full running ranks strictly more bound configurations; selective
        # may additionally skip the UniK traversals.  (Wall-clock dominance
        # is the Figure 15 bench's job — too noisy for a unit assertion.)
        assert len(full.bound_ranking) > len(selective.bound_ranking)
        assert len(full.timings) >= len(selective.timings)

    def test_round_trip_via_dict(self, tiny_records):
        import json

        record = tiny_records[0]
        clone = GroundTruthRecord.from_dict(json.loads(json.dumps(record.as_dict())))
        assert clone.bound_ranking == record.bound_ranking
        assert clone.features == record.features

    def test_training_arrays(self, tiny_records):
        X, bounds, indexes = records_to_training_arrays(tiny_records)
        assert X.shape == (len(tiny_records), 14)
        assert len(bounds) == len(indexes) == len(tiny_records)

    def test_modeled_cost_metric_supported(self):
        X = load_dataset("Skin", n=300, seed=2)
        record = label_task("skin", X, 5, metric="modeled_cost", max_iter=4)
        assert record.best_bound in SELECTION_POOL


class TestUTune:
    def test_fit_predict_cycle(self, tiny_records):
        tuner = UTune(model="dt").fit(tiny_records)
        config = tuner.predict_config(load_dataset("NYC-Taxi", n=400, seed=9), 8)
        assert config.label  # materializable

    def test_unfitted_raises(self, tiny_records):
        with pytest.raises(NotFittedError):
            UTune().evaluate(tiny_records)

    def test_training_on_empty_raises(self):
        with pytest.raises(ConfigurationError):
            UTune().fit([])

    def test_evaluate_reports_mrr(self, tiny_records):
        tuner = UTune(model="dt").fit(tiny_records)
        report = tuner.evaluate(tiny_records)
        assert 0.0 <= report["bound_mrr"] <= 1.0
        assert 0.0 <= report["index_mrr"] <= 1.0
        assert report["train_time"] > 0

    def test_self_evaluation_beats_bdt(self, tiny_records):
        # Training accuracy on its own records should beat the fuzzy rules
        # (Table 5's qualitative relationship).
        tuner = UTune(model="dt").fit(tiny_records)
        learned = tuner.evaluate(tiny_records)
        rules = evaluate_bdt(tiny_records)
        assert learned["bound_mrr"] >= rules["bound_mrr"]

    @pytest.mark.parametrize("model", ["dt", "rf", "knn", "svm", "rc"])
    def test_all_model_backends(self, model, tiny_records):
        tuner = UTune(model=model).fit(tiny_records)
        report = tuner.evaluate(tiny_records)
        assert report["bound_mrr"] > 0.0

    @pytest.mark.parametrize("feature_set", ["basic", "tree", "leaf"])
    def test_all_feature_sets(self, feature_set, tiny_records):
        tuner = UTune(model="dt", feature_set=feature_set).fit(tiny_records)
        assert tuner.evaluate(tiny_records)["bound_mrr"] > 0.0
