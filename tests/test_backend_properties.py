"""Property-based tests for the array-backend tolerance tier.

The accelerator contract (docs/array_backends.md) in property form: for
random workloads, every registered non-numpy backend must produce the
*same clustering* as the numpy backend — identical labels, centroids
within the per-dtype rtol — and the managed kernel ops must agree with
NumPy within tolerance on arbitrary inputs.  On machines without torch or
cupy the accelerator properties skip with the recorded reason; the
kernel-parity properties always run against every registered backend
(which is at least numpy, where parity must be bit-exact).

Also pins the float non-associativity regression from
``tests/test_exec_sharded.py``: with ``X = [[1.0], [1.0], [1e16]]`` the
scatter-add summation order is observable in the last ulp, so the numpy
backend must reproduce ``np.bincount`` exactly while accelerators need
only land within the float64 tolerance band.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend import TOLERANCE_RTOL, available_backends, backend_manager
from repro.core import ACCELERATED_ALGORITHMS, make_algorithm
from repro.core.initialization import init_kmeans_plus_plus

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

RTOL64 = TOLERANCE_RTOL["float64"]

ACCELERATOR_BACKENDS = tuple(
    name for name in available_backends() if name != "numpy"
)


def accelerator_params():
    """Registered accelerators, or one skip-marked placeholder cell.

    Parameterizing over an empty list would silently drop the property
    from the run; a visibly skipped cell keeps "no accelerator was
    tested here" in the report.
    """
    if ACCELERATOR_BACKENDS:
        return ACCELERATOR_BACKENDS
    return [
        pytest.param(
            "torch",
            marks=pytest.mark.skip(
                reason="no accelerator array backend registered here"
            ),
        )
    ]


def datasets(min_n=24, max_n=100, min_d=1, max_d=6):
    """Strategy producing well-behaved float data matrices."""
    return st.builds(
        lambda n, d, seed: np.random.default_rng(seed).normal(size=(n, d)) * 3.0,
        st.integers(min_n, max_n),
        st.integers(min_d, max_d),
        st.integers(0, 10_000),
    )


@settings(**SETTINGS)
@given(
    X=datasets(),
    name=st.sampled_from(ACCELERATED_ALGORITHMS),
    k=st.integers(2, 6),
)
@pytest.mark.parametrize("array_backend", accelerator_params())
def test_accelerator_matches_numpy_clustering(array_backend, X, name, k):
    C0 = init_kmeans_plus_plus(X, k, seed=5)
    baseline = make_algorithm(name, backend="vectorized").fit(
        X, k, initial_centroids=C0, max_iter=25
    )
    accelerated = make_algorithm(
        name, backend="vectorized", array_backend=array_backend
    ).fit(X, k, initial_centroids=C0, max_iter=25)

    assert accelerated.n_iter == baseline.n_iter
    assert np.array_equal(accelerated.labels, baseline.labels), (
        f"{name}/{array_backend}: labels diverge from the numpy backend"
    )
    np.testing.assert_allclose(
        accelerated.centroids, baseline.centroids, rtol=RTOL64, atol=0.0
    )
    assert abs(accelerated.sse - baseline.sse) <= RTOL64 * baseline.sse


@settings(**SETTINGS)
@given(X=datasets(max_n=60))
def test_kernel_parity_every_registered_backend(X):
    """Managed ops agree with NumPy on random inputs, per backend tier."""
    k = min(5, X.shape[0])
    C = X[:k].copy()
    sq = (
        np.einsum("ij,ij->i", X, X)[:, None]
        + np.einsum("ij,ij->i", C, C)[None, :]
        - 2.0 * (X @ C.T)
    )
    for backend_name in available_backends():
        backend = backend_manager.get(backend_name)
        got_norms = backend.sq_norms(X)
        got_mm = backend.matmul(X, C.T)
        got_labels = backend.argmin(sq, axis=1)
        if backend_name == "numpy":
            assert np.array_equal(got_norms, np.einsum("ij,ij->i", X, X))
            assert np.array_equal(got_mm, X @ C.T)
        else:
            np.testing.assert_allclose(
                got_norms, np.einsum("ij,ij->i", X, X), rtol=RTOL64
            )
            np.testing.assert_allclose(got_mm, X @ C.T, rtol=RTOL64)
        # argmin runs on identical host-side input, so the first-index
        # tie-break makes labels exact on every tier.
        assert np.array_equal(got_labels, np.argmin(sq, axis=1))


def test_scatter_add_non_associativity_regression():
    """X=[[1.0],[1.0],[1e16]]: summation order is observable at 1e16."""
    labels = np.zeros(3, dtype=np.intp)
    weights = np.array([1.0, 1.0, 1e16])
    # Sequential left-to-right: (1.0 + 1.0) + 1e16 = 1.0000000000000002e16;
    # any order summing 1e16 first absorbs the ones and yields 1e16 even.
    sequential = np.bincount(labels, weights=weights, minlength=1)[0]
    assert sequential == 1.0000000000000002e16

    numpy_backend = backend_manager.get("numpy")
    got = numpy_backend.bincount(labels, weights=weights, minlength=1)[0]
    assert got == sequential, (
        "numpy backend scatter-add must preserve np.bincount's summation "
        "order bit-for-bit"
    )
    for backend_name in ACCELERATOR_BACKENDS:
        backend = backend_manager.get(backend_name)
        acc = backend.bincount(labels, weights=weights, minlength=1)[0]
        np.testing.assert_allclose(acc, sequential, rtol=RTOL64)
