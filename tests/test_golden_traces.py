"""Golden-trace regression: replay committed trajectories on both backends.

The files under ``tests/golden/`` pin the *full* observable trajectory of
Elkan/Hamerly/Yinyang on two fixed seeds: per-iteration labels, per-iteration
counter deltas, final centroids, SSE, and convergence.  Both backends must
reproduce them exactly — so a future refactor cannot silently change a
convergence path, re-charge a counter, or drift a centroid by one ulp, even
if it still lands on the same clustering.

If a test here fails because of a *deliberate, reviewed* behavioral change,
regenerate with ``PYTHONPATH=src python tests/golden/generate_traces.py``
and commit the diff — it documents the change reviewably.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.backend import OPTIONAL_BACKENDS, TOLERANCE_RTOL
from repro.core import ACCELERATED_ALGORITHMS, BACKENDS

from tests.trace_utils import (
    GOLDEN_ALGORITHMS,
    GOLDEN_SEEDS,
    capture_trace,
    golden_path,
    golden_task,
    require_array_backend,
    traced_algorithm,
)

COUNTER_FIELDS = (
    "changed",
    "distance_computations",
    "point_accesses",
    "node_accesses",
    "bound_accesses",
    "bound_updates",
)


def _load_golden(name: str, seed: int) -> dict:
    path = golden_path(name, seed)
    assert path.exists(), (
        f"missing golden trace {path.name}; run "
        "`PYTHONPATH=src python tests/golden/generate_traces.py`"
    )
    return json.loads(path.read_text())


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
@pytest.mark.parametrize("name", GOLDEN_ALGORITHMS)
def test_replay_matches_golden(name, seed, backend):
    golden = _load_golden(name, seed)
    X, k, C0, max_iter = golden_task(seed)
    trace = capture_trace(traced_algorithm(name, backend), X, k, C0, max_iter)

    assert trace["n_iter"] == golden["n_iter"], (
        f"{name}/{backend}: iteration count changed "
        f"({trace['n_iter']} vs golden {golden['n_iter']})"
    )
    assert trace["converged"] == golden["converged"]
    # JSON floats round-trip via shortest repr, so equality is bit-exact.
    assert trace["sse"] == golden["sse"]
    assert trace["final_centroids"] == golden["final_centroids"], (
        f"{name}/{backend}: final centroids diverge from golden trace"
    )
    assert len(trace["iterations"]) == len(golden["iterations"])
    for t, (got, want) in enumerate(zip(trace["iterations"], golden["iterations"])):
        mismatched = int(
            np.count_nonzero(np.array(got["labels"]) != np.array(want["labels"]))
        )
        assert mismatched == 0, (
            f"{name}/{backend} iteration {t}: {mismatched} label(s) diverge "
            "from golden trace"
        )
        for field in COUNTER_FIELDS:
            assert got[field] == want[field], (
                f"{name}/{backend} iteration {t}: {field} changed "
                f"({got[field]} vs golden {want[field]})"
            )


@pytest.mark.parametrize("array_backend", OPTIONAL_BACKENDS)
@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
@pytest.mark.parametrize("name", ACCELERATED_ALGORITHMS)
def test_accelerator_replay_within_tolerance(name, seed, array_backend):
    """Tolerance-tier replay: accelerators vs the committed golden traces.

    Accelerator backends are not held to bit-identity (BLAS reduction
    order differs), but they must land on the *same clustering*: identical
    convergence path length, identical final labels, centroids within the
    per-dtype rtol, and a bounded relative SSE gap.  Skips with the
    recorded reason when the backend cannot run here — never a silent pass.
    """
    require_array_backend(array_backend)
    golden = _load_golden(name, seed)
    X, k, C0, max_iter = golden_task(seed)
    algorithm = traced_algorithm(name, "vectorized", array_backend)
    trace = capture_trace(algorithm, X, k, C0, max_iter)

    rtol = TOLERANCE_RTOL["float64"]
    assert trace["n_iter"] == golden["n_iter"], (
        f"{name}/{array_backend}: iteration count changed "
        f"({trace['n_iter']} vs golden {golden['n_iter']})"
    )
    assert trace["converged"] == golden["converged"]
    final_got = np.array(trace["iterations"][-1]["labels"])
    final_want = np.array(golden["iterations"][-1]["labels"])
    assert np.array_equal(final_got, final_want), (
        f"{name}/{array_backend}: final labels diverge from golden trace"
    )
    np.testing.assert_allclose(
        np.array(trace["final_centroids"]),
        np.array(golden["final_centroids"]),
        rtol=rtol, atol=0.0,
        err_msg=f"{name}/{array_backend}: centroids outside tolerance band",
    )
    sse_gap = abs(trace["sse"] - golden["sse"]) / golden["sse"]
    assert sse_gap <= rtol, (
        f"{name}/{array_backend}: relative SSE gap {sse_gap:.3e} exceeds "
        f"the tolerance band {rtol:.1e}"
    )


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
@pytest.mark.parametrize("name", GOLDEN_ALGORITHMS)
def test_golden_file_is_well_formed(name, seed):
    golden = _load_golden(name, seed)
    X, k, _, _ = golden_task(seed)
    assert golden["algorithm"] == name
    assert (golden["n"], golden["d"], golden["k"]) == (X.shape[0], X.shape[1], k)
    assert golden["n_iter"] == len(golden["iterations"])
    assert golden["converged"] is True, "golden tasks must run to convergence"
    assert golden["iterations"][-1]["changed"] == 0
    for iteration in golden["iterations"]:
        assert len(iteration["labels"]) == golden["n"]
