"""Golden-trace regression: replay committed trajectories on both backends.

The files under ``tests/golden/`` pin the *full* observable trajectory of
Elkan/Hamerly/Yinyang on two fixed seeds: per-iteration labels, per-iteration
counter deltas, final centroids, SSE, and convergence.  Both backends must
reproduce them exactly — so a future refactor cannot silently change a
convergence path, re-charge a counter, or drift a centroid by one ulp, even
if it still lands on the same clustering.

If a test here fails because of a *deliberate, reviewed* behavioral change,
regenerate with ``PYTHONPATH=src python tests/golden/generate_traces.py``
and commit the diff — it documents the change reviewably.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import BACKENDS

from tests.trace_utils import (
    GOLDEN_ALGORITHMS,
    GOLDEN_SEEDS,
    capture_trace,
    golden_path,
    golden_task,
)

COUNTER_FIELDS = (
    "changed",
    "distance_computations",
    "point_accesses",
    "node_accesses",
    "bound_accesses",
    "bound_updates",
)


def _load_golden(name: str, seed: int) -> dict:
    path = golden_path(name, seed)
    assert path.exists(), (
        f"missing golden trace {path.name}; run "
        "`PYTHONPATH=src python tests/golden/generate_traces.py`"
    )
    return json.loads(path.read_text())


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
@pytest.mark.parametrize("name", GOLDEN_ALGORITHMS)
def test_replay_matches_golden(name, seed, backend):
    golden = _load_golden(name, seed)
    X, k, C0, max_iter = golden_task(seed)
    trace = capture_trace(name, backend, X, k, C0, max_iter)

    assert trace["n_iter"] == golden["n_iter"], (
        f"{name}/{backend}: iteration count changed "
        f"({trace['n_iter']} vs golden {golden['n_iter']})"
    )
    assert trace["converged"] == golden["converged"]
    # JSON floats round-trip via shortest repr, so equality is bit-exact.
    assert trace["sse"] == golden["sse"]
    assert trace["final_centroids"] == golden["final_centroids"], (
        f"{name}/{backend}: final centroids diverge from golden trace"
    )
    assert len(trace["iterations"]) == len(golden["iterations"])
    for t, (got, want) in enumerate(zip(trace["iterations"], golden["iterations"])):
        mismatched = int(
            np.count_nonzero(np.array(got["labels"]) != np.array(want["labels"]))
        )
        assert mismatched == 0, (
            f"{name}/{backend} iteration {t}: {mismatched} label(s) diverge "
            "from golden trace"
        )
        for field in COUNTER_FIELDS:
            assert got[field] == want[field], (
                f"{name}/{backend} iteration {t}: {field} changed "
                f"({got[field]} vs golden {want[field]})"
            )


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
@pytest.mark.parametrize("name", GOLDEN_ALGORITHMS)
def test_golden_file_is_well_formed(name, seed):
    golden = _load_golden(name, seed)
    X, k, _, _ = golden_task(seed)
    assert golden["algorithm"] == name
    assert (golden["n"], golden["d"], golden["k"]) == (X.shape[0], X.shape[1], k)
    assert golden["n_iter"] == len(golden["iterations"])
    assert golden["converged"] is True, "golden tasks must run to convergence"
    assert golden["iterations"][-1]["changed"] == 0
    for iteration in golden["iterations"]:
        assert len(iteration["labels"]) == golden["n"]
