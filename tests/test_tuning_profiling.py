"""Tests for the data-profiling meta-features (Section A.5 extension)."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.datasets import make_blobs, make_grid_clusters, make_uniform
from repro.tuning import UTune, extract_features, generate_ground_truth
from repro.tuning.features import PROFILE_FEATURES, feature_names
from repro.tuning.profiling import (
    extract_profile_features,
    hopkins_statistic,
    nn_distance_profile,
    variance_ratio,
)


class TestHopkins:
    def test_uniform_near_half(self):
        X = make_uniform(500, 2, seed=0)
        h = hopkins_statistic(X, sample_size=60, seed=1)
        assert 0.35 < h < 0.65

    def test_clustered_near_one(self):
        X = make_grid_clusters(500, 2, side=3, jitter=0.01, seed=0)
        h = hopkins_statistic(X, sample_size=60, seed=1)
        assert h > 0.8

    def test_degenerate_data(self):
        h = hopkins_statistic(np.ones((50, 2)), sample_size=10, seed=0)
        assert h == 0.5

    def test_deterministic(self):
        X = make_uniform(200, 3, seed=2)
        assert hopkins_statistic(X, seed=5) == hopkins_statistic(X, seed=5)


class TestNNProfile:
    def test_keys_and_ranges(self):
        X, _ = make_blobs(300, 4, 5, seed=0)
        profile = nn_distance_profile(X, seed=0)
        assert set(profile) == {"nn_dist_mean", "nn_dist_cv"}
        assert 0.0 <= profile["nn_dist_mean"] <= 1.0
        assert profile["nn_dist_cv"] >= 0.0

    def test_tighter_data_smaller_mean(self):
        tight = make_grid_clusters(400, 2, side=3, jitter=0.005, seed=1)
        loose = make_uniform(400, 2, seed=1)
        assert (
            nn_distance_profile(tight, seed=0)["nn_dist_mean"]
            < nn_distance_profile(loose, seed=0)["nn_dist_mean"]
        )


class TestVarianceRatio:
    def test_isotropic_near_one(self):
        X = np.random.default_rng(0).normal(size=(2000, 4))
        assert variance_ratio(X) < 1.3

    def test_dominating_axis_detected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(500, 3))
        X[:, 0] *= 20.0
        # max/mean tops out at d; a dominating axis pushes it toward that.
        assert variance_ratio(X) > 2.5

    def test_constant_data(self):
        assert variance_ratio(np.ones((30, 2))) == 1.0


class TestFeatureIntegration:
    def test_profile_set_names(self):
        names = feature_names("profile")
        assert set(PROFILE_FEATURES) <= set(names)
        assert len(names) == 18

    def test_extract_with_profile(self):
        X, _ = make_blobs(250, 3, 4, seed=0)
        features = extract_features(X, 5, profile=True)
        vec = features.vector("profile")
        assert len(vec) == 18

    def test_vector_without_profile_extraction_errors(self):
        X, _ = make_blobs(200, 3, 4, seed=0)
        features = extract_features(X, 5)  # no profile
        with pytest.raises(ConfigurationError, match="profile"):
            features.vector("profile")

    def test_all_profile_features_extracted(self):
        X, _ = make_blobs(200, 3, 4, seed=0)
        profile = extract_profile_features(X, seed=0)
        assert set(profile) == set(PROFILE_FEATURES)

    def test_utune_with_profile_features(self):
        from repro.datasets import load_dataset

        tasks = []
        for name in ["NYC-Taxi", "Covtype"]:
            X = load_dataset(name, n=250, seed=0)
            for k in [4, 10]:
                tasks.append((name, X, k))
        records = generate_ground_truth(
            tasks, selective=True, max_iter=3, profile=True
        )
        tuner = UTune(model="dt", feature_set="profile").fit(records)
        report = tuner.evaluate(records)
        assert report["bound_mrr"] > 0.0
        config = tuner.predict_config(load_dataset("NYC-Taxi", n=250, seed=3), 4)
        assert config.label
