"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets.loaders import read_jsonl, save_points_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.algorithm == "unik"
        assert args.k == 10

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--algorithm", "nope"])


class TestDatasetsCommand:
    def test_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "BigCross" in out and "NYC-Taxi" in out


class TestClusterCommand:
    def test_table_output(self, capsys):
        code = main(["cluster", "--dataset", "Skin", "--n", "300",
                     "--k", "4", "--max-iter", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sse" in out and "pruning_ratio" in out

    def test_json_output(self, capsys):
        code = main(["cluster", "--dataset", "Skin", "--n", "200", "--k", "3",
                     "--max-iter", "2", "--json"])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["algorithm"] == "unik"
        assert record["k"] == 3

    def test_log_written(self, tmp_path, capsys):
        log = tmp_path / "runs.jsonl"
        main(["cluster", "--dataset", "Skin", "--n", "200", "--k", "3",
              "--max-iter", "2", "--log", str(log)])
        capsys.readouterr()
        assert len(read_jsonl(log)) == 1

    def test_csv_input(self, tmp_path, capsys):
        X = np.random.default_rng(0).normal(size=(120, 3))
        path = tmp_path / "points.csv"
        save_points_csv(path, X)
        code = main(["cluster", "--dataset", str(path), "--csv",
                     "--k", "3", "--max-iter", "2"])
        assert code == 0
        assert "sse" in capsys.readouterr().out


class TestCompareCommand:
    def test_inserts_lloyd_baseline(self, capsys):
        code = main(["compare", "--dataset", "Skin", "--n", "250", "--k", "4",
                     "--algorithms", "hamerly", "--max-iter", "3",
                     "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lloyd" in out and "hamerly" in out

    def test_unknown_algorithm_fails(self, capsys):
        code = main(["compare", "--dataset", "Skin", "--n", "200", "--k", "3",
                     "--algorithms", "quantum-means"])
        assert code == 2
        assert "unknown algorithms" in capsys.readouterr().err

    def test_vectorized_backend_keeps_reference_lloyd_baseline(self, capsys):
        code = main(["compare", "--dataset", "Skin", "--n", "250", "--k", "4",
                     "--algorithms", "elkan,hamerly", "--max-iter", "3",
                     "--repeats", "1", "--backend", "vectorized"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lloyd" in out and "elkan" in out and "hamerly" in out

    def test_vectorized_backend_rejects_unsupported_algorithm(self, capsys):
        code = main(["compare", "--dataset", "Skin", "--n", "200", "--k", "3",
                     "--algorithms", "drake,elkan", "--backend", "vectorized"])
        assert code == 2
        err = capsys.readouterr().err
        assert "no 'vectorized' implementation" in err and "drake" in err

    def test_vectorized_backend_runs_lloyd_baseline(self, capsys):
        # Lloyd is vectorized now: the implicit baseline runs on the
        # selected backend, and the header names that backend.
        code = main(["compare", "--dataset", "Skin", "--n", "200", "--k", "3",
                     "--algorithms", "elkan", "--backend", "vectorized",
                     "--max-iter", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=vectorized" in out and "lloyd" in out


class TestTuneCommand:
    def test_end_to_end(self, tmp_path, capsys):
        log = tmp_path / "gt.jsonl"
        code = main([
            "tune", "--datasets", "Skin,Covtype", "--ks", "4", "--n", "250",
            "--max-iter", "3", "--log", str(log),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Bound@MRR" in out and "BDT" in out
        assert len(read_jsonl(log)) == 2

    def test_ranker_backend_and_cost_metric(self, capsys):
        code = main([
            "tune", "--datasets", "Skin,NYC-Taxi", "--ks", "4,8",
            "--n", "250", "--max-iter", "3",
            "--model", "ranker", "--metric", "modeled_cost",
        ])
        assert code == 0
        assert "ranker" in capsys.readouterr().out

    def test_full_running_mode(self, capsys):
        code = main([
            "tune", "--datasets", "Skin", "--ks", "4", "--n", "200",
            "--max-iter", "3", "--full",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "selective=False" in out


class TestBenchCommand:
    BASE = ["bench", "--datasets", "Skin", "--n", "200", "--ks", "4",
            "--repeats", "1", "--max-iter", "2", "--timeout", "60"]

    def test_healthy_run_exits_zero(self, capsys):
        code = main(self.BASE + ["--algorithms", "lloyd,hamerly"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 ok" in out and "0 failed" in out

    def test_unknown_algorithm_exits_two(self, capsys):
        code = main(self.BASE + ["--algorithms", "lloyd,nope"])
        assert code == 2
        assert "unknown algorithms" in capsys.readouterr().err

    def test_resume_without_log_exits_two(self, capsys):
        code = main(self.BASE + ["--resume"])
        assert code == 2
        assert "--resume requires --log" in capsys.readouterr().err

    def test_malformed_fault_spec_exits_two(self, capsys):
        code = main(self.BASE + ["--inject-faults", "meteor:lloyd"])
        assert code == 2
        assert "bad arguments" in capsys.readouterr().err

    def test_chaos_records_failures_but_exits_zero(self, tmp_path, capsys):
        log = tmp_path / "chaos.jsonl"
        with pytest.warns(RuntimeWarning):
            code = main(self.BASE + [
                "--algorithms", "lloyd,hamerly",
                "--inject-faults", "transient:hamerly:1,raise:lloyd",
                "--retries", "2", "--log", str(log),
            ])
        assert code == 0
        captured = capsys.readouterr()
        assert "1 ok" in captured.out and "1 failed" in captured.out
        assert "FAILED" in captured.out
        assert "--resume" in captured.err  # hint to retry failed cells
        records = read_jsonl(log)
        statuses = {r["algorithm"]: r.get("status", "ok") for r in records}
        assert statuses == {"hamerly": "ok", "lloyd": "failed"}

    def test_strict_turns_failures_into_exit_one(self, capsys):
        with pytest.warns(RuntimeWarning):
            code = main(self.BASE + [
                "--algorithms", "lloyd",
                "--inject-faults", "raise:lloyd", "--strict",
            ])
        assert code == 1
        assert "1 failed" in capsys.readouterr().out

    def test_resume_reruns_only_failures(self, tmp_path, capsys):
        log = tmp_path / "campaign.jsonl"
        with pytest.warns(RuntimeWarning):
            main(self.BASE + [
                "--algorithms", "lloyd,hamerly",
                "--inject-faults", "raise:lloyd", "--log", str(log),
            ])
        capsys.readouterr()
        code = main(self.BASE + [
            "--algorithms", "lloyd,hamerly", "--log", str(log), "--resume",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 ok (1 resumed)" in out and "0 failed" in out
        statuses = [r.get("status", "ok") for r in read_jsonl(log)]
        assert statuses.count("ok") == 2 and statuses.count("failed") == 1
