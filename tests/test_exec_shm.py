"""Tests for the zero-copy shared-memory data plane (repro.exec.shm).

Covers the three contracts the sharded engine leans on: deterministic
naming (segment names are a pure function of fit token + pid + sequence),
validated attach (a worker must never compute on foreign or torn bytes),
and leak-free release on every exit path (``/dev/shm`` holds no ``rpx*``
segment once the lease is gone, even after chaos).
"""

import os
import struct
import sys

import numpy as np
import pytest

from repro.common.exceptions import ShmIntegrityError, ValidationError
from repro.exec.shm import (
    HEADER_SIZE,
    SEGMENT_PREFIX,
    ShmArraySpec,
    ShmLease,
    attach_shm_array,
    live_lease_count,
    segment_name,
)

DEV_SHM = "/dev/shm"


def leaked_segments():
    """Names of live repro data-plane segments on this host."""
    if not os.path.isdir(DEV_SHM):  # non-Linux fallback: can't scan
        return []
    return [n for n in os.listdir(DEV_SHM) if n.startswith(SEGMENT_PREFIX)]


@pytest.fixture(autouse=True)
def no_leak_across_tests():
    before = set(leaked_segments())
    yield
    after = set(leaked_segments())
    assert after - before == set(), "test leaked shm segments"


class TestSegmentName:
    def test_pure_function_of_inputs(self):
        a = segment_name("lloyd:shards4:strict:n100", "x", pid=123, sequence=0)
        b = segment_name("lloyd:shards4:strict:n100", "x", pid=123, sequence=0)
        assert a == b
        assert a.startswith(SEGMENT_PREFIX)

    def test_components_disambiguate(self):
        base = dict(pid=123, sequence=0)
        name = segment_name("tok", "x", **base)
        assert segment_name("tok2", "x", **base) != name
        assert segment_name("tok", "ub", **base) != name
        assert segment_name("tok", "x", pid=124, sequence=0) != name
        assert segment_name("tok", "x", pid=123, sequence=1) != name

    def test_stays_under_posix_name_limit(self):
        # macOS caps shm names at 31 bytes including the leading slash.
        name = segment_name("t" * 4096, "epochxyz", pid=2**31, sequence=99)
        assert len(name) <= 30

    @pytest.mark.parametrize("role", ["", "waytoolongrole", "has space", "1x"])
    def test_bad_roles_rejected(self, role):
        with pytest.raises(ValidationError):
            segment_name("tok", role, pid=1, sequence=0)


class TestPublishAttach:
    def test_roundtrip_bitwise(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(37, 5))
        with ShmLease("fit-roundtrip") as lease:
            lease.publish("x", X, mutable=False)
            view, segment = attach_shm_array(lease.spec("x"))
            try:
                assert view.dtype == X.dtype and view.shape == X.shape
                np.testing.assert_array_equal(view, X)
            finally:
                del view
                segment.close()

    def test_mutable_writes_are_shared(self):
        with ShmLease("fit-mutable") as lease:
            labels = lease.publish("labels", np.zeros(10, dtype=np.int64))
            view, segment = attach_shm_array(lease.spec("labels"))
            try:
                view[3] = 7  # "worker" writes ...
                assert lease.array("labels")[3] == 7  # ... supervisor sees it
                labels[4] = 9  # and the reverse
                assert view[4] == 9
            finally:
                del view
                segment.close()

    def test_immutable_payload_tamper_detected(self):
        X = np.arange(12, dtype=np.float64).reshape(3, 4)
        with ShmLease("fit-tamper") as lease:
            view = lease.publish("x", X, mutable=False)
            view[0, 0] = -1.0  # corrupt after the CRC stamp
            with pytest.raises(ShmIntegrityError, match="crc"):
                attach_shm_array(lease.spec("x"))

    def test_header_tamper_detected(self):
        with ShmLease("fit-header") as lease:
            lease.publish("x", np.ones((2, 2)), mutable=False)
            spec = lease.spec("x")
            segment = lease._segments["x"]
            segment.buf[:8] = b"NOTMAGIC"
            with pytest.raises(ShmIntegrityError, match="magic"):
                attach_shm_array(spec)

    def test_wrong_fit_spec_rejected(self):
        with ShmLease("fit-a") as lease:
            lease.publish("x", np.ones(4), mutable=False)
            spec = lease.spec("x")
            foreign = ShmArraySpec(
                name=spec.name, dtype=spec.dtype, shape=spec.shape,
                crc=spec.crc, token_crc=spec.token_crc ^ 1, mutable=False,
            )
            with pytest.raises(ShmIntegrityError, match="different fit"):
                attach_shm_array(foreign)

    def test_shape_mismatch_rejected(self):
        with ShmLease("fit-shape") as lease:
            lease.publish("x", np.ones((4, 2)), mutable=False)
            spec = lease.spec("x")
            lying = ShmArraySpec(
                name=spec.name, dtype=spec.dtype, shape=(2, 4),
                crc=spec.crc, token_crc=spec.token_crc, mutable=False,
            )
            with pytest.raises(ShmIntegrityError, match="header says"):
                attach_shm_array(lying)

    def test_mutability_flag_mismatch_rejected(self):
        with ShmLease("fit-flag") as lease:
            lease.publish("ub", np.ones(6))
            spec = lease.spec("ub")
            lying = ShmArraySpec(
                name=spec.name, dtype=spec.dtype, shape=spec.shape,
                crc=spec.crc, token_crc=spec.token_crc, mutable=False,
            )
            with pytest.raises(ShmIntegrityError, match="mutability"):
                attach_shm_array(lying)

    def test_duplicate_role_rejected(self):
        with ShmLease("fit-dup") as lease:
            lease.publish("x", np.ones(3))
            with pytest.raises(ValidationError, match="already published"):
                lease.publish("x", np.ones(3))

    def test_header_is_fixed_width(self):
        # The numpy view starts at HEADER_SIZE; a header overflow would
        # silently shift every payload byte.
        spec = ShmArraySpec(
            name="n", dtype="<f8", shape=(3, 4), crc=0, token_crc=0,
            mutable=True,
        )
        from repro.exec.shm import _pack_header

        assert len(_pack_header(spec)) == HEADER_SIZE

    def test_more_than_2d_rejected(self):
        with ShmLease("fit-3d") as lease:
            with pytest.raises(ValidationError, match="2-D"):
                lease.publish("x", np.ones((2, 2, 2)))


class TestLeaseLifecycle:
    def test_release_idempotent_and_counted(self):
        before = live_lease_count()
        lease = ShmLease("fit-count")
        lease.publish("x", np.ones(5))
        assert live_lease_count() == before + 1
        lease.release()
        assert lease.released
        assert live_lease_count() == before
        lease.release()  # second release is a no-op
        assert live_lease_count() == before

    def test_publish_after_release_rejected(self):
        lease = ShmLease("fit-late")
        lease.release()
        with pytest.raises(ValidationError, match="released"):
            lease.publish("x", np.ones(2))

    def test_release_with_borrowed_view_still_unlinks(self):
        # A stray numpy view makes close() raise BufferError; the name
        # must be unlinked regardless — that's the leakable resource.
        lease = ShmLease("fit-borrow")
        view = lease.publish("x", np.ones(8))
        name = lease.spec("x").name
        lease.release()
        if os.path.isdir(DEV_SHM):
            assert name not in os.listdir(DEV_SHM)
        del view

    def test_context_manager_releases_on_error(self):
        with pytest.raises(RuntimeError):
            with ShmLease("fit-ctx") as lease:
                lease.publish("x", np.ones(4))
                raise RuntimeError("boom")
        assert lease.released

    def test_atexit_backstop_releases_only_own_pid(self):
        from repro.exec.shm import _release_leaked_leases

        lease = ShmLease("fit-backstop")
        lease.publish("x", np.ones(4))
        lease._owner_pid = os.getpid() + 1  # simulate a forked child
        _release_leaked_leases()
        assert not lease.released  # not ours to release
        lease._owner_pid = os.getpid()
        _release_leaked_leases()
        assert lease.released


@pytest.mark.skipif(not os.path.isdir(DEV_SHM), reason="needs /dev/shm")
class TestNoDevShmLeak:
    def test_chaos_fit_leaves_no_segment(self):
        """End-to-end: a process-runner fit with injected worker kills and
        a strict-mode shard failure must leave /dev/shm clean."""
        from repro.common.exceptions import ShardFailedError
        from repro.eval.faults import FaultPlan
        from repro.eval.runtime import ExecutionPolicy
        from repro.exec.sharded import ShardedLloydKMeans

        rng = np.random.default_rng(7)
        X = rng.normal(size=(200, 4))
        before = set(leaked_segments())

        # Recovered chaos: shard 1 is killed once, engine recomputes.
        algo = ShardedLloydKMeans(
            shards=2, shard_policy="recompute", runner="process",
            fault_plan=FaultPlan.parse("kill:lloyd:shard=1:iter=1"),
            execution=ExecutionPolicy(timeout=30.0, retries=0),
        )
        algo.fit(X, 3, seed=0)
        assert set(leaked_segments()) == before

        # Terminal chaos: strict policy raises out of fit().
        algo = ShardedLloydKMeans(
            shards=2, shard_policy="strict", runner="process",
            fault_plan=FaultPlan.parse("kill:lloyd:shard=0"),
            execution=ExecutionPolicy(timeout=30.0, retries=0),
        )
        with pytest.raises(ShardFailedError):
            algo.fit(X, 3, seed=0)
        assert set(leaked_segments()) == before
        assert live_lease_count() == 0

    def test_interrupted_fit_leaves_no_segment(self):
        """KeyboardInterrupt mid-fit must still release the lease."""
        from repro.exec.sharded import ShardedLloydKMeans

        rng = np.random.default_rng(11)
        X = rng.normal(size=(120, 3))
        before = set(leaked_segments())

        class Interrupting(ShardedLloydKMeans):
            def _refine(self, iteration, previous_labels):
                if iteration >= 1:
                    raise KeyboardInterrupt
                return super()._refine(iteration, previous_labels)

        algo = Interrupting(shards=2, runner="process")
        with pytest.raises(KeyboardInterrupt):
            algo.fit(X, 3, seed=0)
        assert set(leaked_segments()) == before
        assert live_lease_count() == 0
