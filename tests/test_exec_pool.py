"""Tests for the persistent supervised worker pool (repro.exec.pool).

The pool is the control plane of the sharded engine: processes spawn
once, the setup prologue replays into respawned workers, and the
supervision semantics (deadline kill, crash detection, transient retry
with deterministic backoff, settled result lists) match the
``supervised_map`` contract the chaos suite pins.
"""

import os
import time

import numpy as np
import pytest

from repro.common.exceptions import (
    TransientError,
    ValidationError,
    WorkerCrashError,
)
from repro.eval.runtime import ExecutionPolicy, FailedRun, RunKey
from repro.exec.pool import RESERVED_OPS, WorkerPool
from repro.exec.shm import ShmLease, attach_shm_array


# ----------------------------------------------------------------------
# Module-level handlers (spawn contexts pickle them by reference).
# ----------------------------------------------------------------------


def echo_handler(state, message):
    return {"echo": message.get("value"), "pid": os.getpid()}


def crash_handler(state, message):
    os._exit(13)


def hang_handler(state, message):
    time.sleep(60.0)


def flaky_handler(state, message):
    if message["attempt"] <= message.get("fail_attempts", 1):
        raise TransientError("injected transient")
    return {"attempt": message["attempt"], "pid": os.getpid()}


def boom_handler(state, message):
    raise RuntimeError("kaboom")


def unpicklable_handler(state, message):
    return lambda: None


def remember_handler(state, message):
    state["memory"] = message["value"]
    return {"stored": True}


def recall_handler(state, message):
    return {"memory": state.get("memory"), "pid": os.getpid()}


def attach_handler(state, message):
    for role in sorted(message["specs"]):
        view, segment = attach_shm_array(message["specs"][role])
        state["arrays"][role] = view
        state["segments"].append(segment)
    return {"attached": sorted(message["specs"])}


def write_handler(state, message):
    state["arrays"]["cells"][message["index"]] = message["value"]
    return {"written": message["index"]}


HANDLERS = {
    "echo": echo_handler,
    "crash": crash_handler,
    "hang": hang_handler,
    "flaky": flaky_handler,
    "boom": boom_handler,
    "unpicklable": unpicklable_handler,
    "remember": remember_handler,
    "recall": recall_handler,
    "attach": attach_handler,
    "write": write_handler,
}


def key(i=0, algorithm="lloyd"):
    return RunKey(
        algorithm=algorithm, dataset="unit", n=10, d=2, k=2, seed=i, max_iter=5
    )


def make_pool(workers=2, **policy_kwargs):
    policy_kwargs.setdefault("timeout", 20.0)
    return WorkerPool(
        HANDLERS, workers=workers, policy=ExecutionPolicy(**policy_kwargs)
    )


class TestLifecycle:
    def test_workers_spawn_once_and_persist(self):
        with make_pool(workers=2) as pool:
            first = pool.run_batch(
                [{"op": "echo", "value": i} for i in range(2)],
                [key(i) for i in range(2)],
            )
            second = pool.run_batch(
                [{"op": "echo", "value": i} for i in range(2)],
                [key(i) for i in range(2)],
            )
            pids_first = {r["pid"] for r in first}
            pids_second = {r["pid"] for r in second}
            assert pids_first == pids_second  # the same long-lived processes
            assert pool.spawned_processes == 2
            assert pool.respawns == 0
            assert [r["echo"] for r in first] == [0, 1]

    def test_ping_reports_live_pids(self):
        with make_pool(workers=2) as pool:
            pool.start()
            pids = pool.ping()
            assert len(pids) == 2
            assert all(isinstance(p, int) for p in pids)
            assert len(set(pids)) == 2

    def test_reserved_ops_rejected(self):
        for op in RESERVED_OPS:
            with pytest.raises(ValidationError, match="reserved"):
                WorkerPool({op: echo_handler}, workers=1)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValidationError):
            WorkerPool(HANDLERS, workers=0)

    def test_shutdown_idempotent_and_final(self):
        pool = make_pool(workers=1)
        pool.start()
        pool.shutdown()
        pool.shutdown()  # second call is a no-op
        with pytest.raises(ValidationError, match="shut down"):
            pool.run_batch([{"op": "echo"}], [key()])
        with pytest.raises(ValidationError, match="shut down"):
            pool.start()

    def test_stats_shape(self):
        with make_pool(workers=1) as pool:
            pool.run_batch([{"op": "echo", "value": 1}], [key()])
            stats = pool.stats()
            assert stats["workers"] == 1
            assert stats["spawned_processes"] == 1
            assert stats["respawns"] == 0
            assert stats["bytes_sent"] > 0
            assert stats["bytes_received"] > 0
            assert stats["messages"] == 1  # one command sent (replies aren't)


class TestFailureHandling:
    def test_crash_settles_and_slot_respawns(self):
        with make_pool(workers=2) as pool:
            outcomes = pool.run_batch(
                [{"op": "crash"}, {"op": "echo", "value": 7}],
                [key(0), key(1)],
            )
            assert isinstance(outcomes[0], FailedRun)
            assert outcomes[0].error_type == "WorkerCrashError"
            assert outcomes[1]["echo"] == 7
            # The dead slot respawns lazily and serves the next batch.
            follow_up = pool.run_batch(
                [{"op": "echo", "value": i} for i in range(2)],
                [key(i) for i in range(2)],
            )
            assert [r["echo"] for r in follow_up] == [0, 1]
            assert pool.respawns == 1

    def test_hang_killed_at_deadline(self):
        with make_pool(workers=1, timeout=0.5) as pool:
            start = time.monotonic()
            (outcome,) = pool.run_batch([{"op": "hang"}], [key()])
            elapsed = time.monotonic() - start
            assert isinstance(outcome, FailedRun)
            assert outcome.error_type == "RunTimeoutError"
            assert elapsed < 10.0  # killed at the deadline, not after 60s

    def test_transient_retries_with_attempt_rewrite(self):
        with make_pool(workers=1, retries=2, backoff_base=0.01) as pool:
            (outcome,) = pool.run_batch(
                [{"op": "flaky", "fail_attempts": 2}], [key()]
            )
            assert outcome["attempt"] == 3  # failed twice, succeeded third

    def test_transient_exhaustion_settles_failed(self):
        with make_pool(workers=1, retries=1, backoff_base=0.01) as pool:
            (outcome,) = pool.run_batch(
                [{"op": "flaky", "fail_attempts": 99}], [key()]
            )
            assert isinstance(outcome, FailedRun)
            assert outcome.error_type == "TransientError"
            assert outcome.attempts == 2

    def test_handler_error_not_retried(self):
        with make_pool(workers=1, retries=3, backoff_base=0.01) as pool:
            (outcome,) = pool.run_batch([{"op": "boom"}], [key()])
            assert isinstance(outcome, FailedRun)
            assert outcome.error_type == "RuntimeError"
            assert outcome.attempts == 1  # deterministic errors don't retry

    def test_unknown_op_settles_failed(self):
        with make_pool(workers=1) as pool:
            (outcome,) = pool.run_batch([{"op": "nope"}], [key()])
            assert isinstance(outcome, FailedRun)
            assert outcome.error_type == "KeyError"

    def test_unpicklable_result_reported(self):
        with make_pool(workers=1) as pool:
            (outcome,) = pool.run_batch([{"op": "unpicklable"}], [key()])
            assert isinstance(outcome, FailedRun)
            assert "unpicklable" in outcome.message

    def test_mismatched_keys_rejected(self):
        with make_pool(workers=1) as pool:
            with pytest.raises(ValidationError, match="run keys"):
                pool.run_batch([{"op": "echo"}], [])


class TestSetupReplay:
    def test_setup_state_survives_respawn(self):
        """A respawned worker gets the setup prologue replayed, so its
        worker-local state is restored before the slot is reused."""
        with make_pool(workers=1) as pool:
            pool.setup([{"op": "remember", "value": "plane"}])
            (before,) = pool.run_batch([{"op": "recall"}], [key()])
            assert before["memory"] == "plane"
            (crashed,) = pool.run_batch([{"op": "crash"}], [key()])
            assert isinstance(crashed, FailedRun)
            (after,) = pool.run_batch([{"op": "recall"}], [key()])
            assert after["memory"] == "plane"
            assert after["pid"] != before["pid"]
            assert pool.respawns == 1

    def test_setup_failure_raises(self):
        with make_pool(workers=1) as pool:
            with pytest.raises(WorkerCrashError, match="boom"):
                pool.setup([{"op": "boom"}])

    def test_shm_attach_replay_keeps_plane_writable(self):
        """End-to-end control/data-plane handshake: workers attach to a
        shared segment via setup, write through it, keep writing after a
        crash-respawn cycle, and the supervisor sees every write."""
        with ShmLease("pool-replay-fit") as lease:
            cells = lease.publish("cells", np.zeros(4, dtype=np.float64))
            with make_pool(workers=1) as pool:
                pool.setup([{"op": "attach", "specs": lease.specs()}])
                pool.run_batch(
                    [{"op": "write", "index": 0, "value": 1.5}], [key()]
                )
                assert cells[0] == 1.5
                pool.run_batch([{"op": "crash"}], [key()])
                pool.run_batch(
                    [{"op": "write", "index": 3, "value": 2.5}], [key()]
                )
                assert cells[3] == 2.5
                assert pool.respawns == 1


class TestBatchSemantics:
    def test_more_commands_than_workers(self):
        with make_pool(workers=2) as pool:
            results = pool.run_batch(
                [{"op": "echo", "value": i} for i in range(7)],
                [key(i) for i in range(7)],
            )
            assert [r["echo"] for r in results] == list(range(7))

    def test_empty_batch(self):
        with make_pool(workers=1) as pool:
            assert pool.run_batch([], []) == []

    def test_max_total_time_bounds_batch(self):
        with make_pool(
            workers=1, timeout=5.0, max_total_time=0.3,
            retries=5, retry_on_timeout=True, backoff_base=0.01,
        ) as pool:
            outcomes = pool.run_batch(
                [{"op": "hang"}, {"op": "hang"}], [key(0), key(1)]
            )
            assert all(isinstance(o, FailedRun) for o in outcomes)
            assert all(o.error_type == "RunTimeoutError" for o in outcomes)
