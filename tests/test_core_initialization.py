"""Unit tests for centroid initialization."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.core.initialization import (
    init_kmeans_plus_plus,
    init_random,
    initialize_centroids,
)
from repro.instrumentation.counters import OpCounters


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(3).normal(size=(200, 4))


class TestRandomInit:
    def test_shape(self, data):
        assert init_random(data, 7, seed=0).shape == (7, 4)

    def test_centroids_are_data_points(self, data):
        centroids = init_random(data, 5, seed=1)
        for c in centroids:
            assert (np.linalg.norm(data - c, axis=1) < 1e-12).any()

    def test_distinct_rows(self, data):
        centroids = init_random(data, 10, seed=2)
        assert len(np.unique(centroids, axis=0)) == 10

    def test_deterministic(self, data):
        np.testing.assert_array_equal(
            init_random(data, 4, seed=9), init_random(data, 4, seed=9)
        )


class TestKMeansPlusPlus:
    def test_shape(self, data):
        assert init_kmeans_plus_plus(data, 6, seed=0).shape == (6, 4)

    def test_centroids_are_data_points(self, data):
        centroids = init_kmeans_plus_plus(data, 5, seed=1)
        for c in centroids:
            assert (np.linalg.norm(data - c, axis=1) < 1e-12).any()

    def test_spreads_better_than_random(self):
        # On well-separated blobs, k-means++ should hit distinct blobs far
        # more reliably: compare minimum pairwise centroid separation.
        from repro.datasets import make_blobs

        X, _ = make_blobs(600, 2, 6, cluster_std=0.05, center_box=(-50, 50), seed=5)

        def min_sep(C):
            d = np.linalg.norm(C[:, None] - C[None, :], axis=2)
            np.fill_diagonal(d, np.inf)
            return d.min()

        pp = np.mean([min_sep(init_kmeans_plus_plus(X, 6, seed=s)) for s in range(10)])
        rnd = np.mean([min_sep(init_random(X, 6, seed=s)) for s in range(10)])
        assert pp > rnd

    def test_duplicate_data_fallback(self):
        X = np.ones((50, 3))
        centroids = init_kmeans_plus_plus(X, 3, seed=0)
        assert centroids.shape == (3, 3)

    def test_counts_distances(self, data):
        counters = OpCounters()
        init_kmeans_plus_plus(data, 4, seed=0, counters=counters)
        assert counters.distance_computations == 4 * len(data)


class TestDispatch:
    def test_known_methods(self, data):
        for method in ["random", "k-means++", "kmeans++", "K-MEANS++"]:
            assert initialize_centroids(data, 3, method, seed=0).shape == (3, 4)

    def test_unknown_method(self, data):
        with pytest.raises(ConfigurationError, match="unknown initialization"):
            initialize_centroids(data, 3, "farthest-first")
