"""Index-specific behavior: capacities, box metadata, cover scales, etc."""

import numpy as np
import pytest

from repro.datasets import make_blobs, make_grid_clusters
from repro.indexes import BallTree, CoverTree, HierarchicalKMeansTree, KDTree, MTree


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(500, 4, 8, seed=31)
    return X


class TestBallTree:
    def test_leaf_capacity_respected(self, data):
        tree = BallTree(data, capacity=20)
        assert all(leaf.num <= 20 for leaf in tree.leaves())

    def test_bigger_capacity_fewer_nodes(self, data):
        small = BallTree(data, capacity=10).node_count()
        large = BallTree(data, capacity=60).node_count()
        assert large < small

    def test_binary_fanout(self, data):
        tree = BallTree(data, capacity=10)
        for node in tree.root.iter_subtree():
            if not node.is_leaf:
                assert len(node.children) == 2

    def test_assembled_data_gives_small_leaf_radii(self):
        # Grid clusters "assemble well": leaf radius << root radius.
        X = make_grid_clusters(600, 2, side=4, jitter=0.01, seed=1)
        tree = BallTree(X, capacity=30)
        stats = tree.stats()
        assert stats.leaf_radius_mean < 0.15 * stats.root_radius


class TestKDTree:
    def test_default_capacity_one(self, data):
        tree = KDTree(data[:100])
        assert all(leaf.num == 1 for leaf in tree.leaves())

    def test_many_more_nodes_than_ball_tree(self, data):
        # The paper: kd-tree has ~f times more nodes than Ball-tree(f).
        kd = KDTree(data).node_count()
        ball = BallTree(data, capacity=30).node_count()
        assert kd > 5 * ball

    def test_boxes_cover_points(self, data):
        tree = KDTree(data[:200], capacity=8)
        for node in tree.root.iter_subtree():
            lo, hi = tree.box(node)
            pts = data[:200][node.subtree_point_indices()]
            assert (pts >= lo - 1e-12).all() and (pts <= hi + 1e-12).all()

    def test_farthest_corner(self, data):
        tree = KDTree(data[:100], capacity=10)
        node = tree.root
        lo, hi = tree.box(node)
        direction = np.ones(data.shape[1])
        np.testing.assert_array_equal(tree.farthest_corner(node, direction), hi)
        np.testing.assert_array_equal(tree.farthest_corner(node, -direction), lo)

    def test_duplicated_coordinate_split(self):
        # Median == max on a heavily duplicated column must still split.
        X = np.zeros((100, 2))
        X[:, 0] = np.repeat([0.0, 1.0], 50)
        tree = KDTree(X, capacity=10)
        tree.check_invariants()


class TestMTree:
    def test_capacity_respected(self, data):
        tree = MTree(data, capacity=25)
        assert all(leaf.num <= 25 for leaf in tree.leaves())

    def test_construction_slowest_in_distances(self, data):
        # Insertion-based M-tree pays far more construction distances than
        # the bulk-built Ball-tree (Figure 7's construction-cost ordering).
        m = MTree(data, capacity=30).counters.distance_computations
        b = BallTree(data, capacity=30).counters.distance_computations
        assert m > b


class TestCoverTree:
    def test_radii_shrink_with_depth(self, data):
        tree = CoverTree(data)
        for node in tree.root.iter_subtree():
            for child in node.children:
                if not node.is_leaf:
                    assert child.radius <= node.radius + 1e-9

    def test_multiway_fanout_possible(self, data):
        tree = CoverTree(data)
        fanouts = [
            len(node.children)
            for node in tree.root.iter_subtree()
            if not node.is_leaf
        ]
        assert max(fanouts) > 2


class TestHKT:
    def test_branching_bound(self, data):
        tree = HierarchicalKMeansTree(data, branching=4, capacity=20, seed=0)
        for node in tree.root.iter_subtree():
            if not node.is_leaf:
                assert len(node.children) <= 4

    def test_capacity_respected(self, data):
        tree = HierarchicalKMeansTree(data, capacity=15, seed=0)
        assert all(leaf.num <= 15 for leaf in tree.leaves())

    def test_rejects_branching_below_two(self, data):
        with pytest.raises(ValueError, match="branching"):
            HierarchicalKMeansTree(data, branching=1)

    def test_deterministic_given_seed(self, data):
        t1 = HierarchicalKMeansTree(data, seed=5)
        t2 = HierarchicalKMeansTree(data, seed=5)
        assert t1.node_count() == t2.node_count()
