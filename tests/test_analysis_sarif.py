"""SARIF reporter: golden output, schema shape, docs/rule-table parity.

The golden file pins the exact SARIF 2.1.0 document produced for a fixed
report — regenerate with ``python tests/golden/generate_sarif.py`` after a
deliberate format change.  The docs-parity test is what the CI
``lint-analysis`` job runs to fail the build when ``ALL_RULE_IDS`` and the
rule table in ``docs/static_analysis.md`` drift apart.
"""

import json
import re
from pathlib import Path

from repro.analysis import ALL_RULE_IDS, format_findings_sarif
from repro.analysis.findings import Finding
from repro.analysis.runner import AnalysisReport

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN = Path(__file__).resolve().parent / "golden" / "sarif_report.json"


def fixed_report() -> AnalysisReport:
    """The frozen input behind the golden file (keep in sync with
    ``tests/golden/generate_sarif.py``)."""
    return AnalysisReport(
        findings=[
            Finding(
                path="src/repro/core/sample.py",
                line=12,
                col=5,
                rule_id="R001",
                message="distance computed outside the instrumented kernels",
                snippet="d = np.linalg.norm(a - b)",
            ),
            Finding(
                path="src/repro/eval/sample.py",
                line=7,
                col=1,
                rule_id="R007",
                message="'worker' mutates module-global state",
                snippet="TOTALS[key] = value",
            ),
        ],
        files_scanned=2,
        parse_errors=["src/repro/broken.py:3: invalid syntax"],
    )


class TestSarifGolden:
    def test_matches_golden_document(self):
        produced = json.loads(format_findings_sarif(fixed_report()))
        golden = json.loads(GOLDEN.read_text())
        assert produced == golden

    def test_is_deterministic(self):
        assert format_findings_sarif(fixed_report()) == format_findings_sarif(
            fixed_report()
        )


class TestSarifShape:
    def test_schema_and_version(self):
        doc = json.loads(format_findings_sarif(AnalysisReport()))
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        assert len(doc["runs"]) == 1

    def test_every_rule_described_even_without_findings(self):
        doc = json.loads(format_findings_sarif(AnalysisReport()))
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert tuple(r["id"] for r in driver["rules"]) == ALL_RULE_IDS
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["invocations"][0]["executionSuccessful"] is True

    def test_results_carry_fingerprint_and_location(self):
        doc = json.loads(format_findings_sarif(fixed_report()))
        run = doc["runs"][0]
        assert run["invocations"][0]["executionSuccessful"] is False
        result = run["results"][0]
        assert result["ruleId"] == "R001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/core/sample.py"
        assert location["region"]["startLine"] == 12
        fingerprint = result["partialFingerprints"]["reproStatementHash/v1"]
        assert fingerprint == fixed_report().findings[0].content_hash
        # ruleIndex points back into the driver's rules array.
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "R001"


class TestDocsRuleTableParity:
    def test_docs_table_lists_exactly_the_registered_rules(self):
        docs = (REPO_ROOT / "docs" / "static_analysis.md").read_text()
        documented = set()
        for line in docs.splitlines():
            match = re.match(r"\|\s*(R\d{3})\s*\|", line)
            if match:
                documented.add(match.group(1))
        assert documented == set(ALL_RULE_IDS), (
            "docs/static_analysis.md rule table out of sync with "
            f"ALL_RULE_IDS: docs={sorted(documented)} "
            f"registered={list(ALL_RULE_IDS)}"
        )
