"""Unit tests for the synthetic generators."""

import numpy as np
import pytest

from repro.common.exceptions import ValidationError
from repro.datasets import (
    make_annular,
    make_blobs,
    make_gaussian_quantiles,
    make_grid_clusters,
    make_mnist_like,
    make_spatial,
    make_uniform,
)


class TestMakeBlobs:
    def test_shape(self):
        X, y = make_blobs(100, 5, 3, seed=0)
        assert X.shape == (100, 5)
        assert y.shape == (100,)

    def test_deterministic(self):
        X1, _ = make_blobs(50, 3, 2, seed=7)
        X2, _ = make_blobs(50, 3, 2, seed=7)
        np.testing.assert_array_equal(X1, X2)

    def test_labels_in_range(self):
        _, y = make_blobs(80, 2, 4, seed=1)
        assert y.min() >= 0 and y.max() < 4

    def test_cluster_std_controls_spread(self):
        tight, y = make_blobs(500, 2, 1, cluster_std=0.1, seed=3)
        loose, _ = make_blobs(500, 2, 1, cluster_std=5.0, seed=3)
        assert tight.std() < loose.std()

    def test_rejects_too_many_centers(self):
        with pytest.raises(ValidationError):
            make_blobs(5, 2, 10, seed=0)


class TestMakeSpatial:
    def test_two_dimensional(self):
        X = make_spatial(200, seed=0)
        assert X.shape == (200, 2)

    def test_within_extent(self):
        X = make_spatial(300, extent=(0.0, 1.0), hotspot_std=0.001, seed=2)
        # Hot-spot noise can leak slightly past the box; background cannot.
        assert X.min() > -0.2 and X.max() < 1.2

    def test_clustered_structure(self):
        # Hot-spot data must be far more concentrated than uniform noise:
        # compare median nearest-neighbor distances.
        X = make_spatial(400, hotspots=5, hotspot_std=0.002,
                         background_fraction=0.0, seed=3)
        U = make_uniform(400, 2, seed=3)

        def median_nn(A):
            d = np.linalg.norm(A[:, None] - A[None, :], axis=2)
            np.fill_diagonal(d, np.inf)
            return np.median(d.min(axis=1))

        assert median_nn(X) < median_nn(U) / 3


class TestMakeMnistLike:
    def test_shape_and_range(self):
        X = make_mnist_like(50, 100, seed=0)
        assert X.shape == (50, 100)
        assert X.min() >= 0.0 and X.max() <= 255.0

    def test_default_dimension_is_784(self):
        X = make_mnist_like(10, seed=1)
        assert X.shape[1] == 784


class TestMakeAnnular:
    def test_radii_concentrate_on_rings(self):
        X = make_annular(500, 3, rings=2, ring_gap=4.0, ring_std=0.01, seed=0)
        radii = np.linalg.norm(X, axis=1)
        near_ring = (np.abs(radii - 4.0) < 0.1) | (np.abs(radii - 8.0) < 0.1)
        assert near_ring.mean() > 0.95


class TestMakeGaussianQuantiles:
    def test_equal_mass_shells(self):
        X, y = make_gaussian_quantiles(1000, 4, 5, seed=0)
        counts = np.bincount(y)
        assert len(counts) == 5
        assert counts.max() - counts.min() <= 1

    def test_shells_ordered_by_radius(self):
        X, y = make_gaussian_quantiles(600, 3, 3, seed=1)
        radii = np.linalg.norm(X, axis=1)
        assert radii[y == 0].max() <= radii[y == 2].min() + 1e-9

    def test_variance_scales_spread(self):
        X1, _ = make_gaussian_quantiles(500, 2, 2, variance=0.01, seed=2)
        X2, _ = make_gaussian_quantiles(500, 2, 2, variance=4.0, seed=2)
        assert X1.std() < X2.std()


class TestMakeGridClusters:
    def test_values_near_lattice(self):
        X = make_grid_clusters(300, 2, side=3, jitter=0.01, seed=0)
        rounded = np.round(X)
        assert np.abs(X - rounded).max() < 0.1
        assert rounded.min() >= 0 and rounded.max() <= 2

    def test_shape(self):
        X = make_grid_clusters(100, 3, side=2, seed=1)
        assert X.shape == (100, 3)


class TestMakeUniform:
    def test_bounds(self):
        X = make_uniform(100, 3, low=-2.0, high=2.0, seed=0)
        assert X.min() >= -2.0 and X.max() <= 2.0
