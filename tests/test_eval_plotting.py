"""Tests for the ASCII plotting helpers."""

import pytest

from repro.eval.plotting import bar_chart, line_series, sparkline


class TestBarChart:
    def test_longest_bar_is_max(self):
        chart = bar_chart({"a": 1.0, "b": 4.0}, width=8)
        lines = chart.splitlines()
        assert lines[1].count("█") == 8
        assert lines[0].count("█") == 2

    def test_title_included(self):
        chart = bar_chart({"x": 1.0}, title="Speedups")
        assert chart.splitlines()[0] == "Speedups"

    def test_values_printed(self):
        chart = bar_chart({"x": 3.14159}, fmt="{:.2f}")
        assert "3.14" in chart

    def test_zero_values(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart and "b" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestLineSeries:
    def test_markers_present(self):
        plot = line_series(
            {"one": [(0, 0), (1, 1)], "two": [(0, 1), (1, 0)]},
            width=20, height=6,
        )
        assert "*" in plot and "+" in plot
        assert "legend" in plot

    def test_axis_annotations(self):
        plot = line_series({"s": [(2, 10), (8, 50)]}, width=20, height=5)
        assert "y_max=50" in plot
        assert "2 .. 8" in plot

    def test_single_point(self):
        plot = line_series({"s": [(1, 1)]})
        assert "*" in plot

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_series({})
        with pytest.raises(ValueError):
            line_series({"s": []})

    def test_monotone_series_shape(self):
        # A rising series must place its marker higher (earlier row) for
        # larger x.
        plot = line_series({"s": [(0, 0), (10, 10)]}, width=11, height=5)
        rows = [line[1:] for line in plot.splitlines() if line.startswith("|")]
        first_col = next(i for i, row in enumerate(rows) if row[0] == "*")
        last_col = next(i for i, row in enumerate(rows) if row[10] == "*")
        assert last_col < first_col  # larger y renders nearer the top


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_extremes(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[1] == "█"

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
