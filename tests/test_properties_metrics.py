"""Property-based tests for quality metrics and transforms (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.transforms import MinMaxScaler, PCAProjector, StandardScaler
from repro.eval.quality import (
    adjusted_rand_index,
    normalized_mutual_info,
    silhouette_score,
)
from repro.tuning.mrr import mean_reciprocal_rank, reciprocal_rank

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def datasets(min_n=20, max_n=150, min_d=1, max_d=6):
    return st.builds(
        lambda n, d, seed: np.random.default_rng(seed).normal(size=(n, d)) * 2.0,
        st.integers(min_n, max_n),
        st.integers(min_d, max_d),
        st.integers(0, 10_000),
    )


def labelings(max_n=150, max_classes=5):
    return st.builds(
        lambda n, c, seed: np.random.default_rng(seed).integers(0, c, size=n),
        st.integers(4, max_n),
        st.integers(2, max_classes),
        st.integers(0, 10_000),
    )


@settings(**SETTINGS)
@given(labels=labelings())
def test_ari_and_nmi_bounded(labels):
    other = np.roll(labels, 1)
    ari = adjusted_rand_index(labels, other)
    nmi = normalized_mutual_info(labels, other)
    assert -1.0 - 1e-9 <= ari <= 1.0 + 1e-9
    assert -1e-9 <= nmi <= 1.0 + 1e-9


@settings(**SETTINGS)
@given(labels=labelings())
def test_ari_nmi_self_agreement(labels):
    if len(set(labels.tolist())) < 2:
        return
    assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)
    assert normalized_mutual_info(labels, labels) == pytest.approx(1.0)


@settings(**SETTINGS)
@given(X=datasets(min_n=10), seed=st.integers(0, 100))
def test_silhouette_bounded(X, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=len(X))
    if len(set(labels.tolist())) < 2:
        labels[0] = 0
        labels[1] = 1
    score = silhouette_score(X, labels, sample_size=None)
    assert -1.0 - 1e-9 <= score <= 1.0 + 1e-9


@settings(**SETTINGS)
@given(X=datasets())
def test_standard_scaler_round_trip(X):
    scaler = StandardScaler().fit(X)
    np.testing.assert_allclose(
        scaler.inverse_transform(scaler.transform(X)), X, atol=1e-8
    )


@settings(**SETTINGS)
@given(X=datasets())
def test_minmax_in_unit_box_on_train(X):
    Z = MinMaxScaler().fit_transform(X)
    assert Z.min() >= -1e-12 and Z.max() <= 1.0 + 1e-12


@settings(**SETTINGS)
@given(X=datasets(min_n=30, min_d=2))
def test_pca_preserves_pairwise_distances_upper_bound(X):
    """Projections never increase distances (orthonormal components)."""
    q = min(2, X.shape[1])
    Z = PCAProjector(q, seed=0).fit_transform(X)
    rng = np.random.default_rng(0)
    for _ in range(5):
        i, j = rng.integers(0, len(X), size=2)
        original = np.linalg.norm(X[i] - X[j])
        projected = np.linalg.norm(Z[i] - Z[j])
        assert projected <= original + 1e-7


@settings(**SETTINGS)
@given(
    ranking=st.lists(st.sampled_from("abcdef"), min_size=1, max_size=6, unique=True),
    prediction=st.sampled_from("abcdef"),
)
def test_reciprocal_rank_bounds(ranking, prediction):
    value = reciprocal_rank(ranking, prediction)
    assert 0.0 <= value <= 1.0
    if prediction == ranking[0]:
        assert value == 1.0
    if prediction not in ranking:
        assert value == 0.0


@settings(**SETTINGS)
@given(
    rankings=st.lists(
        st.permutations(["a", "b", "c"]), min_size=1, max_size=10
    )
)
def test_mrr_perfect_predictor(rankings):
    predictions = [ranking[0] for ranking in rankings]
    assert mean_reciprocal_rank(rankings, predictions) == pytest.approx(1.0)
