"""Exactness: every accelerated method reproduces Lloyd's result.

This is the framework's core guarantee (all methods are *exact* Lloyd
accelerations, Section 2.2): from the same initial centroids, final labels,
centroids, and SSE must match the Lloyd baseline on every dataset shape.
"""

import numpy as np
import pytest

from repro.core import make_algorithm
from repro.core.lloyd import LloydKMeans

SEQUENTIAL = [
    "elkan", "hamerly", "drake", "yinyang", "regroup", "heap",
    "annular", "exponion", "drift", "vector", "pami20", "search", "sphere",
]
INDEXED = ["index", "unik", "full"]
MAX_ITER = 60


def _baseline(X, k, centroids):
    return LloydKMeans().fit(X, k, initial_centroids=centroids, max_iter=MAX_ITER)


def _check_match(result, baseline):
    __tracebackhide__ = True
    assert np.array_equal(result.labels, baseline.labels), (
        f"{result.algorithm}: labels diverge from Lloyd "
        f"({np.count_nonzero(result.labels != baseline.labels)} mismatches)"
    )
    assert result.sse == pytest.approx(baseline.sse, rel=1e-9)
    np.testing.assert_allclose(result.centroids, baseline.centroids, atol=1e-8)


@pytest.mark.parametrize("name", SEQUENTIAL + INDEXED)
class TestExactnessOnBlobs:
    def test_small_k(self, name, blobs_small, centroids_factory):
        k = 4
        C0 = centroids_factory(blobs_small, k)
        base = _baseline(blobs_small, k, C0)
        result = make_algorithm(name).fit(
            blobs_small, k, initial_centroids=C0, max_iter=MAX_ITER
        )
        _check_match(result, base)

    def test_large_k(self, name, blobs_small, centroids_factory):
        k = 25
        C0 = centroids_factory(blobs_small, k, seed=3)
        base = _baseline(blobs_small, k, C0)
        result = make_algorithm(name).fit(
            blobs_small, k, initial_centroids=C0, max_iter=MAX_ITER
        )
        _check_match(result, base)


@pytest.mark.parametrize("name", SEQUENTIAL + INDEXED)
class TestExactnessOnOtherShapes:
    def test_spatial(self, name, spatial_small, centroids_factory):
        k = 12
        C0 = centroids_factory(spatial_small, k, seed=1)
        base = _baseline(spatial_small, k, C0)
        result = make_algorithm(name).fit(
            spatial_small, k, initial_centroids=C0, max_iter=MAX_ITER
        )
        _check_match(result, base)

    def test_uniform_worst_case(self, name, uniform_small, centroids_factory):
        k = 6
        C0 = centroids_factory(uniform_small, k, seed=2)
        base = _baseline(uniform_small, k, C0)
        result = make_algorithm(name).fit(
            uniform_small, k, initial_centroids=C0, max_iter=MAX_ITER
        )
        _check_match(result, base)


@pytest.mark.parametrize("name", SEQUENTIAL + INDEXED)
def test_k_equals_one(name, blobs_small):
    """k = 1 degenerates every bound; must still equal the global mean."""
    C0 = blobs_small[:1].copy()
    result = make_algorithm(name).fit(
        blobs_small, 1, initial_centroids=C0, max_iter=10
    )
    np.testing.assert_allclose(
        result.centroids[0], blobs_small.mean(axis=0), atol=1e-8
    )
    assert (result.labels == 0).all()


@pytest.mark.parametrize("name", SEQUENTIAL)
def test_k_equals_two(name, blobs_small, centroids_factory):
    C0 = centroids_factory(blobs_small, 2, seed=5)
    base = _baseline(blobs_small, 2, C0)
    result = make_algorithm(name).fit(
        blobs_small, 2, initial_centroids=C0, max_iter=MAX_ITER
    )
    _check_match(result, base)


@pytest.mark.parametrize("name", ["elkan", "hamerly", "yinyang", "unik", "index"])
def test_duplicate_points(name):
    """Heavily duplicated data exercises zero distances and ties."""
    rng = np.random.default_rng(7)
    X = np.repeat(rng.normal(size=(20, 3)), 10, axis=0)
    C0 = X[[0, 50, 100, 150]].copy() + rng.normal(0, 1e-3, size=(4, 3))
    base = _baseline(X, 4, C0)
    result = make_algorithm(name).fit(X, 4, initial_centroids=C0, max_iter=MAX_ITER)
    assert result.sse == pytest.approx(base.sse, rel=1e-9)


@pytest.mark.parametrize("name", SEQUENTIAL + INDEXED)
def test_converged_flag_and_stability(name, blobs_small, centroids_factory):
    """A converged run re-fed its own centroids must not move them."""
    k = 5
    C0 = centroids_factory(blobs_small, k)
    result = make_algorithm(name).fit(
        blobs_small, k, initial_centroids=C0, max_iter=MAX_ITER
    )
    assert result.converged
    again = make_algorithm(name).fit(
        blobs_small, k, initial_centroids=result.centroids, max_iter=5
    )
    np.testing.assert_allclose(again.centroids, result.centroids, atol=1e-8)
    # Index-based methods aggregate sums in a different order than Lloyd,
    # so re-convergence may cost one extra (no-op) iteration of float jitter.
    assert again.n_iter <= 2
