"""Unit tests for CSV/JSONL persistence."""

import numpy as np
import pytest

from repro.common.exceptions import DatasetError
from repro.datasets.loaders import (
    append_jsonl,
    load_points_csv,
    read_jsonl,
    save_points_csv,
)


class TestCsvRoundTrip:
    def test_round_trip_exact(self, tmp_path):
        X = np.random.default_rng(0).normal(size=(20, 4))
        path = tmp_path / "points.csv"
        save_points_csv(path, X)
        np.testing.assert_array_equal(load_points_csv(path), X)

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "points.csv"
        save_points_csv(path, np.ones((2, 2)))
        assert path.exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="no such dataset"):
            load_points_csv(tmp_path / "missing.csv")

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\nx,3.0\n")
        with pytest.raises(DatasetError, match="malformed row"):
            load_points_csv(path)

    def test_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("1.0,2.0\n3.0\n")
        with pytest.raises(DatasetError, match="ragged"):
            load_points_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError, match="no data rows"):
            load_points_csv(path)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text("1.0,2.0\n\n3.0,4.0\n")
        assert load_points_csv(path).shape == (2, 2)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        records = [{"a": 1}, {"b": [1, 2]}]
        assert append_jsonl(path, records) == 2
        assert read_jsonl(path) == records

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl(path, [{"x": 1}])
        append_jsonl(path, [{"x": 2}])
        assert len(read_jsonl(path)) == 2

    def test_missing_file_returns_empty(self, tmp_path):
        assert read_jsonl(tmp_path / "nope.jsonl") == []

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\n{broken\n')
        with pytest.raises(DatasetError, match="malformed JSON"):
            read_jsonl(path)
