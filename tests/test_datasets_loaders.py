"""Unit tests for CSV/JSONL persistence."""

import numpy as np
import pytest

from repro.common.exceptions import DatasetError
from repro.datasets.loaders import (
    append_jsonl,
    load_points_csv,
    read_jsonl,
    save_points_csv,
)


class TestCsvRoundTrip:
    def test_round_trip_exact(self, tmp_path):
        X = np.random.default_rng(0).normal(size=(20, 4))
        path = tmp_path / "points.csv"
        save_points_csv(path, X)
        np.testing.assert_array_equal(load_points_csv(path), X)

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "points.csv"
        save_points_csv(path, np.ones((2, 2)))
        assert path.exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="no such dataset"):
            load_points_csv(tmp_path / "missing.csv")

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\nx,3.0\n")
        with pytest.raises(DatasetError, match="malformed row"):
            load_points_csv(path)

    def test_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("1.0,2.0\n3.0\n")
        with pytest.raises(DatasetError, match="ragged"):
            load_points_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError, match="no data rows"):
            load_points_csv(path)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text("1.0,2.0\n\n3.0,4.0\n")
        assert load_points_csv(path).shape == (2, 2)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        records = [{"a": 1}, {"b": [1, 2]}]
        assert append_jsonl(path, records) == 2
        assert read_jsonl(path) == records

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl(path, [{"x": 1}])
        append_jsonl(path, [{"x": 2}])
        assert len(read_jsonl(path)) == 2

    def test_missing_file_returns_empty(self, tmp_path):
        assert read_jsonl(tmp_path / "nope.jsonl") == []

    def test_malformed_midfile_raises(self, tmp_path):
        # A bad line *followed by valid records* is corruption, not a
        # crash-truncated tail — recovery must not silently eat it.
        path = tmp_path / "bad.jsonl"
        path.write_text('{broken\n{"ok": 1}\n')
        with pytest.raises(DatasetError, match="malformed JSON"):
            read_jsonl(path)

    def test_truncated_tail_skipped_with_warning(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        path.write_text('{"ok": 1}\n{"partial": tru')
        with pytest.warns(RuntimeWarning, match="truncated trailing"):
            records = read_jsonl(path)
        assert records == [{"ok": 1}]

    def test_truncated_tail_quarantined(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        path.write_text('{"ok": 1}\n{"partial": tru')
        with pytest.warns(RuntimeWarning, match="quarantined"):
            records = read_jsonl(path, truncated="quarantine")
        assert records == [{"ok": 1}]
        quarantine = tmp_path / "crashed.jsonl.quarantine"
        assert quarantine.read_text() == '{"partial": tru\n'

    def test_truncated_tail_strict_mode_raises(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        path.write_text('{"partial": tru')
        with pytest.raises(DatasetError, match="malformed JSON"):
            read_jsonl(path, truncated="raise")

    def test_unknown_truncated_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="truncated"):
            read_jsonl(tmp_path / "x.jsonl", truncated="explode")

    def test_append_then_recover_round_trip(self, tmp_path):
        from repro.eval.faults import corrupt_jsonl_tail

        path = tmp_path / "log.jsonl"
        append_jsonl(path, [{"x": 1}, {"x": 2}])
        corrupt_jsonl_tail(path, drop_bytes=4)
        with pytest.warns(RuntimeWarning):
            records = read_jsonl(path)
        assert records == [{"x": 1}]
