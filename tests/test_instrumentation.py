"""Unit tests for counters and phase timers."""

import time

import pytest

from repro.instrumentation.counters import CounterSnapshot, OpCounters
from repro.instrumentation.timers import PhaseTimer


class TestOpCounters:
    def test_initial_state_zero(self):
        counters = OpCounters()
        assert all(v == 0 for v in counters.as_dict().values())

    def test_add_helpers(self):
        counters = OpCounters()
        counters.add_distances(3)
        counters.add_point_accesses(2)
        counters.add_node_accesses()
        counters.add_bound_accesses(5)
        counters.add_bound_updates(4)
        assert counters.distance_computations == 3
        assert counters.point_accesses == 2
        assert counters.node_accesses == 1
        assert counters.bound_accesses == 5
        assert counters.bound_updates == 4

    def test_footprint_keeps_maximum(self):
        counters = OpCounters()
        counters.record_footprint(100)
        counters.record_footprint(50)
        assert counters.footprint_floats == 100
        counters.record_footprint(200)
        assert counters.footprint_floats == 200

    def test_reset(self):
        counters = OpCounters()
        counters.add_distances(7)
        counters.record_footprint(10)
        counters.reset()
        assert counters.distance_computations == 0
        assert counters.footprint_floats == 0

    def test_snapshot_is_decoupled(self):
        counters = OpCounters()
        counters.add_distances(1)
        snap = counters.snapshot()
        counters.add_distances(1)
        assert snap.distance_computations == 1
        assert counters.distance_computations == 2

    def test_snapshot_subtraction(self):
        before = CounterSnapshot(distance_computations=2, bound_accesses=1)
        after = CounterSnapshot(distance_computations=5, bound_accesses=4)
        delta = after - before
        assert delta.distance_computations == 3
        assert delta.bound_accesses == 3

    def test_merge_accumulates_and_maxes_footprint(self):
        a = OpCounters(distance_computations=2, footprint_floats=10)
        b = OpCounters(distance_computations=3, footprint_floats=5)
        a.merge(b)
        assert a.distance_computations == 5
        assert a.footprint_floats == 10


class TestPhaseTimer:
    def test_totals_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.002)
        with timer.phase("a"):
            time.sleep(0.002)
        assert timer.total("a") >= 0.004

    def test_unknown_phase_is_zero(self):
        assert PhaseTimer().total("missing") == 0.0

    def test_per_iteration_tracking(self):
        timer = PhaseTimer()
        timer.start_iteration()
        with timer.phase("assignment"):
            time.sleep(0.001)
        timer.start_iteration()
        with timer.phase("assignment"):
            time.sleep(0.001)
        with timer.phase("refinement"):
            pass
        assert len(timer.iterations) == 2
        assert "refinement" in timer.iterations[1]
        assert "refinement" not in timer.iterations[0]

    def test_iteration_total(self):
        timer = PhaseTimer()
        timer.start_iteration()
        with timer.phase("x"):
            time.sleep(0.001)
        assert timer.iteration_total(0) == pytest.approx(
            sum(timer.iterations[0].values())
        )

    def test_grand_total_covers_all_phases(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert timer.grand_total() == pytest.approx(timer.total("a") + timer.total("b"))

    def test_exception_still_records(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("broken"):
                raise RuntimeError("boom")
        assert timer.total("broken") >= 0.0
