"""Crash-recovery tests for the sharded engine's per-iteration checkpoints.

The acceptance scenario: a fit interrupted mid-flight resumes from its
fsync'd JSONL checkpoint to the *identical* final model — and the store
survives the same abuse as the evaluation log (truncated tails, stale
records from other fits, hand-tampered trajectories fail loudly instead
of silently producing a wrong model).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.common.exceptions import CheckpointError, ShardFailedError
from repro.core import VECTORIZED_ALGORITHMS, make_algorithm
from repro.datasets import make_blobs
from repro.eval.faults import FaultPlan, corrupt_jsonl_tail
from repro.exec.checkpoint import (
    ShardCheckpoint,
    array_crc,
    decode_labels,
    encode_labels,
)
from repro.exec.sharded import SHARDED_ALGORITHMS

from tests.trace_utils import golden_task

INTERRUPT = FaultPlan.parse("raise:*:shard=1:iter=3")


def _fit(name, task, **kwargs):
    X, k, C0, max_iter = task
    algorithm = SHARDED_ALGORITHMS[name](shards=3, runner="inline", **kwargs)
    return algorithm.fit(X, k, initial_centroids=C0, max_iter=max_iter)


@pytest.fixture(scope="module")
def task():
    return golden_task(0)


class TestEncoding:
    def test_labels_roundtrip(self):
        labels = np.array([0, 5, -1, 3], dtype=np.intp)
        assert np.array_equal(decode_labels(encode_labels(labels), 4), labels)

    def test_decode_rejects_wrong_length(self):
        blob = encode_labels(np.zeros(4, dtype=np.intp))
        with pytest.raises(CheckpointError):
            decode_labels(blob, 5)

    def test_array_crc_tracks_contents(self):
        a = np.arange(6, dtype=np.float64)
        assert array_crc(a) == array_crc(a.copy())
        b = a.copy()
        b[3] += 1e-9
        assert array_crc(a) != array_crc(b)


class TestLoad:
    def _record(self, fit_key, iteration, tag=0):
        return {
            "fit_key": fit_key,
            "iteration": iteration,
            "labels": encode_labels(np.full(4, tag, dtype=np.intp)),
            "centroid_crc": 1,
        }

    def test_returns_contiguous_prefix_only(self, tmp_path):
        cp = ShardCheckpoint(tmp_path / "ck.jsonl")
        for iteration in (0, 1, 3):
            cp.append(self._record("fit", iteration))
        loaded = cp.load("fit")
        # Iteration 3 sits after a hole: the fit cannot reach it by replay.
        assert sorted(loaded) == [0, 1]

    def test_last_record_per_iteration_wins(self, tmp_path):
        cp = ShardCheckpoint(tmp_path / "ck.jsonl")
        cp.append(self._record("fit", 0, tag=1))
        cp.append(self._record("fit", 0, tag=2))
        labels = decode_labels(cp.load("fit")[0]["labels"], 4)
        assert labels.tolist() == [2, 2, 2, 2]

    def test_other_fit_keys_ignored(self, tmp_path):
        cp = ShardCheckpoint(tmp_path / "ck.jsonl")
        cp.append(self._record("other", 0))
        assert cp.load("fit") == {}

    def test_missing_file_is_empty(self, tmp_path):
        assert ShardCheckpoint(tmp_path / "absent.jsonl").load("fit") == {}


class TestResume:
    def test_lloyd_resumes_to_bit_identical_model(self, tmp_path, task):
        path = tmp_path / "ck.jsonl"
        want = _fit("lloyd", task)
        with pytest.raises(ShardFailedError) as excinfo:
            _fit("lloyd", task, checkpoint=path, fault_plan=INTERRUPT)
        assert excinfo.value.iteration == 3
        resumed = _fit("lloyd", task, checkpoint=path)
        # Lloyd keeps no bound state, so the resumed run is bit-identical
        # in *every* observable — labels, centroids, counters.
        assert np.array_equal(resumed.labels, want.labels)
        assert resumed.centroids.tobytes() == want.centroids.tobytes()
        assert resumed.n_iter == want.n_iter
        assert resumed.sse == want.sse
        assert resumed.counters == want.counters
        assert resumed.extras["resumed_iterations"] == 3

    def test_elkan_resumes_to_identical_model(self, tmp_path, task):
        # Bounds are reseeded conservatively on resume: the model (labels,
        # centroids, iteration count) is exact; only post-resume pruning
        # counters may differ (docs/sharding.md).
        path = tmp_path / "ck.jsonl"
        want = _fit("elkan", task)
        with pytest.raises(ShardFailedError):
            _fit("elkan", task, checkpoint=path, fault_plan=INTERRUPT)
        resumed = _fit("elkan", task, checkpoint=path)
        assert np.array_equal(resumed.labels, want.labels)
        assert resumed.centroids.tobytes() == want.centroids.tobytes()
        assert resumed.n_iter == want.n_iter
        assert resumed.sse == want.sse
        assert resumed.extras["resumed_iterations"] == 3

    def test_resume_through_make_algorithm(self, tmp_path, task):
        X, k, C0, max_iter = task
        path = tmp_path / "ck.jsonl"
        want = _fit("lloyd", task)
        interrupted = make_algorithm(
            "lloyd", backend="vectorized", shards=3,
            runner="inline", checkpoint=path, fault_plan=INTERRUPT,
        )
        with pytest.raises(ShardFailedError):
            interrupted.fit(X, k, initial_centroids=C0, max_iter=max_iter)
        resumed = make_algorithm(
            "lloyd", backend="vectorized", shards=3,
            runner="inline", checkpoint=path,
        ).fit(X, k, initial_centroids=C0, max_iter=max_iter)
        assert resumed.centroids.tobytes() == want.centroids.tobytes()
        assert resumed.extras["resumed_iterations"] == 3

    def test_corrupt_tail_then_resume_still_identical(self, tmp_path, task):
        path = tmp_path / "ck.jsonl"
        want = _fit("lloyd", task)
        with pytest.raises(ShardFailedError):
            _fit("lloyd", task, checkpoint=path, fault_plan=INTERRUPT)
        # Crash mid-append: the truncated final line is quarantined and the
        # fit replays one iteration less — same final model.
        corrupt_jsonl_tail(path, drop_bytes=9)
        resumed = _fit("lloyd", task, checkpoint=path)
        assert np.array_equal(resumed.labels, want.labels)
        assert resumed.centroids.tobytes() == want.centroids.tobytes()
        assert resumed.counters == want.counters
        assert resumed.extras["resumed_iterations"] == 2

    def test_tampered_labels_fail_loudly(self, tmp_path, task):
        X, _, _, _ = task
        path = tmp_path / "ck.jsonl"
        with pytest.raises(ShardFailedError):
            _fit("lloyd", task, checkpoint=path, fault_plan=INTERRUPT)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        tampered = records[1]  # iteration 1: mid-trajectory
        labels = decode_labels(tampered["labels"], len(X)).copy()
        labels[:10] = (labels[:10] + 1) % 6
        tampered["labels"] = encode_labels(labels)
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        # Iteration 1 replays the tampered labels (its entry digest still
        # matches), but iteration 2's centroids then diverge from the
        # stored trajectory — replay must refuse, not produce a wrong model.
        with pytest.raises(CheckpointError, match="different centroids"):
            _fit("lloyd", task, checkpoint=path)

    def test_different_data_does_not_replay(self, tmp_path, task):
        path = tmp_path / "ck.jsonl"
        with pytest.raises(ShardFailedError):
            _fit("lloyd", task, checkpoint=path, fault_plan=INTERRUPT)
        X, _ = make_blobs(90, 4, 3, seed=11)
        fresh = SHARDED_ALGORITHMS["lloyd"](
            shards=3, runner="inline", checkpoint=path
        ).fit(X, 3, max_iter=10, seed=0)
        assert "resumed_iterations" not in fresh.extras
        want = VECTORIZED_ALGORITHMS["lloyd"]().fit(X, 3, max_iter=10, seed=0)
        assert np.array_equal(fresh.labels, want.labels)
        assert fresh.centroids.tobytes() == want.centroids.tobytes()
