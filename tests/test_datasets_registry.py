"""Unit tests for the paper-dataset surrogate registry."""

import numpy as np
import pytest

from repro.common.exceptions import DatasetError
from repro.datasets import dataset_names, get_dataset_spec, load_dataset


class TestRegistryContents:
    def test_all_table2_datasets_present(self):
        names = {name.lower() for name in dataset_names()}
        for expected in [
            "bigcross", "conflong", "covtype", "europe", "keggdirect",
            "keggundirect", "nyc-taxi", "skin", "power", "roadnetwork",
            "us-census", "mnist",
        ]:
            assert expected in names

    def test_generalization_datasets_present(self):
        # Spam, Shuttle, MSD: the unseen-dataset check of Section 7.3.2.
        names = {name.lower() for name in dataset_names()}
        assert {"spam", "shuttle", "msd"} <= names

    def test_spec_dimensions_match_paper(self):
        assert get_dataset_spec("Mnist").d == 784
        assert get_dataset_spec("NYC-Taxi").d == 2
        assert get_dataset_spec("BigCross").d == 57
        assert get_dataset_spec("US-Census").d == 68

    def test_spec_scales_match_paper(self):
        assert get_dataset_spec("NYC-Taxi").n_paper == 3_500_000
        assert get_dataset_spec("BigCross").n_paper == 1_160_000

    def test_lookup_case_insensitive(self):
        assert get_dataset_spec("nyc-taxi").name == "NYC-Taxi"

    def test_unknown_raises(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            get_dataset_spec("nope")

    def test_default_n_clamped(self):
        spec = get_dataset_spec("Spam")  # tiny paper dataset
        assert 1000 <= spec.default_n() <= 8000
        spec = get_dataset_spec("NYC-Taxi")  # huge paper dataset
        assert spec.default_n() <= 8000


class TestLoadDataset:
    def test_shapes_and_determinism(self):
        X1 = load_dataset("Covtype", n=500, seed=3)
        X2 = load_dataset("Covtype", n=500, seed=3)
        assert X1.shape == (500, 55)
        np.testing.assert_array_equal(X1, X2)

    def test_different_seeds_differ(self):
        X1 = load_dataset("Skin", n=200, seed=1)
        X2 = load_dataset("Skin", n=200, seed=2)
        assert not np.array_equal(X1, X2)

    def test_dimension_override(self):
        X = load_dataset("Mnist", n=50, d=64, seed=0)
        assert X.shape == (50, 64)

    def test_spatial_dimension_padding(self):
        X = load_dataset("Europe", n=100, d=4, seed=0)
        assert X.shape == (100, 4)
        # The padded dimensions are near-zero noise.
        assert np.abs(X[:, 2:]).max() < 0.2

    def test_every_dataset_loads(self):
        for name in dataset_names():
            X = load_dataset(name, n=60, seed=0)
            assert X.shape[0] == 60
            assert np.isfinite(X).all()
