"""Unit tests for the instrumented distance kernels."""

import numpy as np
import pytest

from repro.common.distance import (
    block_distances,
    block_sq_distances,
    centroid_pairwise_distances,
    chunked_sq_distances,
    distances_to_centroids,
    euclidean,
    norms,
    one_to_many_distances,
    paired_distances,
    paired_sq_distances,
    pairwise_distances,
    pairwise_sq_distances,
    sq_euclidean,
)
from repro.instrumentation.counters import OpCounters


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestScalarDistances:
    def test_euclidean_matches_numpy(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        assert euclidean(a, b) == pytest.approx(np.linalg.norm(a - b))

    def test_sq_euclidean(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        assert sq_euclidean(a, b) == pytest.approx(np.linalg.norm(a - b) ** 2)

    def test_counts_one_distance(self, rng):
        counters = OpCounters()
        euclidean(rng.normal(size=3), rng.normal(size=3), counters)
        assert counters.distance_computations == 1

    def test_zero_distance(self):
        a = np.array([1.0, 2.0])
        assert euclidean(a, a) == 0.0


class TestBatchDistances:
    def test_pairwise_matches_bruteforce(self, rng):
        A = rng.normal(size=(7, 4))
        B = rng.normal(size=(5, 4))
        got = pairwise_distances(A, B)
        want = np.linalg.norm(A[:, None] - B[None, :], axis=2)
        np.testing.assert_allclose(got, want, atol=1e-9)

    def test_pairwise_counts(self, rng):
        counters = OpCounters()
        pairwise_sq_distances(rng.normal(size=(7, 4)), rng.normal(size=(5, 4)), counters)
        assert counters.distance_computations == 35

    def test_pairwise_clamps_negative(self):
        # Identical rows can produce tiny negatives under expansion.
        A = np.full((3, 8), 1e8)
        sq = pairwise_sq_distances(A, A)
        assert (sq >= 0.0).all()

    def test_chunked_matches_pairwise(self, rng):
        A = rng.normal(size=(600, 3))
        B = rng.normal(size=(4, 3))
        np.testing.assert_allclose(
            chunked_sq_distances(A, B, chunk=128),
            pairwise_sq_distances(A, B),
            atol=1e-9,
        )

    def test_chunked_counts(self, rng):
        counters = OpCounters()
        chunked_sq_distances(rng.normal(size=(10, 2)), rng.normal(size=(3, 2)), counters)
        assert counters.distance_computations == 30

    def test_distances_to_centroids(self, rng):
        x = rng.normal(size=4)
        C = rng.normal(size=(6, 4))
        got = distances_to_centroids(x, C)
        np.testing.assert_allclose(got, np.linalg.norm(C - x, axis=1), atol=1e-12)

    def test_distances_to_centroids_counts_k(self, rng):
        counters = OpCounters()
        distances_to_centroids(rng.normal(size=4), rng.normal(size=(6, 4)), counters)
        assert counters.distance_computations == 6


class TestChunkedCounterParity:
    """Chunk size is a memory knob — it must never change a Table 3 metric.

    Regression for the counter-parity contract of ``chunked_sq_distances``:
    the charge is one distance per row-pair, taken once up front, exactly
    as ``pairwise_sq_distances`` charges — for *every* chunk size,
    including chunks that don't divide n and chunks larger than n.
    """

    @pytest.mark.parametrize("chunk", [1, 3, 7, 512, 10_000])
    def test_charge_is_chunk_invariant(self, rng, chunk):
        A = rng.normal(size=(23, 3))
        B = rng.normal(size=(5, 3))
        counters = OpCounters()
        chunked_sq_distances(A, B, counters, chunk=chunk)
        assert counters.distance_computations == 23 * 5

    def test_charge_equals_pairwise(self, rng):
        A = rng.normal(size=(17, 4))
        B = rng.normal(size=(6, 4))
        chunked_counters = OpCounters()
        pairwise_counters = OpCounters()
        chunked_sq_distances(A, B, chunked_counters, chunk=4)
        pairwise_sq_distances(A, B, pairwise_counters)
        assert (
            chunked_counters.distance_computations
            == pairwise_counters.distance_computations
            == 17 * 6
        )

    def test_values_are_chunk_invariant_bitwise(self, rng):
        A = rng.normal(size=(50, 4))
        B = rng.normal(size=(7, 4))
        baseline = chunked_sq_distances(A, B, chunk=512)
        for chunk in (1, 13, 50):
            assert (chunked_sq_distances(A, B, chunk=chunk) == baseline).all()

    def test_only_distance_counter_is_touched(self, rng):
        counters = OpCounters()
        chunked_sq_distances(rng.normal(size=(9, 2)), rng.normal(size=(4, 2)),
                             counters, chunk=2)
        assert counters.point_accesses == 0
        assert counters.bound_accesses == 0
        assert counters.bound_updates == 0
        assert counters.node_accesses == 0


class TestRowwiseExactKernels:
    """The bit-identity layer backing ``repro.core.vectorized``."""

    def test_one_to_many_bitwise_scalar_parity(self, rng):
        x = rng.normal(size=6)
        Y = rng.normal(size=(9, 6))
        batch = one_to_many_distances(x, Y)
        assert (batch == np.array([euclidean(x, y) for y in Y])).all()

    def test_paired_bitwise_scalar_parity(self, rng):
        A = rng.normal(size=(8, 5))
        B = rng.normal(size=(8, 5))
        sq = paired_sq_distances(A, B)
        assert (sq == np.array([sq_euclidean(a, b) for a, b in zip(A, B)])).all()

    def test_paired_broadcasts_single_vector(self, rng):
        A = rng.normal(size=(8, 5))
        b = rng.normal(size=5)
        batch = paired_distances(A, b)
        assert (batch == np.array([euclidean(a, b) for a in A])).all()

    def test_paired_counts_rows(self, rng):
        counters = OpCounters()
        paired_sq_distances(rng.normal(size=(8, 5)), rng.normal(size=5), counters)
        assert counters.distance_computations == 8

    def test_block_bitwise_scalar_parity(self, rng):
        A = rng.normal(size=(6, 4))
        B = rng.normal(size=(5, 4))
        block = block_sq_distances(A, B)
        for i in range(6):
            for j in range(5):
                assert block[i, j] == sq_euclidean(A[i], B[j])

    def test_block_distances_counts_all_pairs(self, rng):
        counters = OpCounters()
        block_distances(rng.normal(size=(6, 4)), rng.normal(size=(5, 4)), counters)
        assert counters.distance_computations == 30

    def test_gathered_rows_keep_parity(self, rng):
        # Fancy-indexed (gathered) operands are the common case inside the
        # vectorized backend; parity must survive the gather.
        X = rng.normal(size=(30, 5))
        C = rng.normal(size=(4, 5))
        idx = rng.integers(0, 30, size=12)
        labels = rng.integers(0, 4, size=12)
        sq = paired_sq_distances(X[idx], C[labels])
        want = np.array(
            [sq_euclidean(X[i], C[j]) for i, j in zip(idx, labels)]
        )
        assert (sq == want).all()


class TestCentroidMatrix:
    def test_symmetric_zero_diagonal(self, rng):
        C = rng.normal(size=(5, 3))
        cc = centroid_pairwise_distances(C)
        np.testing.assert_allclose(cc, cc.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(cc), 0.0, atol=1e-12)

    def test_counts_half_matrix(self, rng):
        counters = OpCounters()
        centroid_pairwise_distances(rng.normal(size=(5, 3)), counters)
        assert counters.distance_computations == 10  # k(k-1)/2

    def test_values_match_bruteforce(self, rng):
        C = rng.normal(size=(4, 6))
        cc = centroid_pairwise_distances(C)
        want = np.linalg.norm(C[:, None] - C[None, :], axis=2)
        np.testing.assert_allclose(cc, want, atol=1e-9)


class TestNorms:
    def test_matches_numpy(self, rng):
        X = rng.normal(size=(8, 5))
        np.testing.assert_allclose(norms(X), np.linalg.norm(X, axis=1), atol=1e-12)

    def test_single_row(self):
        assert norms(np.array([[3.0, 4.0]]))[0] == pytest.approx(5.0)
