"""Unit tests for the instrumented distance kernels."""

import numpy as np
import pytest

from repro.common.distance import (
    centroid_pairwise_distances,
    chunked_sq_distances,
    distances_to_centroids,
    euclidean,
    norms,
    pairwise_distances,
    pairwise_sq_distances,
    sq_euclidean,
)
from repro.instrumentation.counters import OpCounters


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestScalarDistances:
    def test_euclidean_matches_numpy(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        assert euclidean(a, b) == pytest.approx(np.linalg.norm(a - b))

    def test_sq_euclidean(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        assert sq_euclidean(a, b) == pytest.approx(np.linalg.norm(a - b) ** 2)

    def test_counts_one_distance(self, rng):
        counters = OpCounters()
        euclidean(rng.normal(size=3), rng.normal(size=3), counters)
        assert counters.distance_computations == 1

    def test_zero_distance(self):
        a = np.array([1.0, 2.0])
        assert euclidean(a, a) == 0.0


class TestBatchDistances:
    def test_pairwise_matches_bruteforce(self, rng):
        A = rng.normal(size=(7, 4))
        B = rng.normal(size=(5, 4))
        got = pairwise_distances(A, B)
        want = np.linalg.norm(A[:, None] - B[None, :], axis=2)
        np.testing.assert_allclose(got, want, atol=1e-9)

    def test_pairwise_counts(self, rng):
        counters = OpCounters()
        pairwise_sq_distances(rng.normal(size=(7, 4)), rng.normal(size=(5, 4)), counters)
        assert counters.distance_computations == 35

    def test_pairwise_clamps_negative(self):
        # Identical rows can produce tiny negatives under expansion.
        A = np.full((3, 8), 1e8)
        sq = pairwise_sq_distances(A, A)
        assert (sq >= 0.0).all()

    def test_chunked_matches_pairwise(self, rng):
        A = rng.normal(size=(600, 3))
        B = rng.normal(size=(4, 3))
        np.testing.assert_allclose(
            chunked_sq_distances(A, B, chunk=128),
            pairwise_sq_distances(A, B),
            atol=1e-9,
        )

    def test_chunked_counts(self, rng):
        counters = OpCounters()
        chunked_sq_distances(rng.normal(size=(10, 2)), rng.normal(size=(3, 2)), counters)
        assert counters.distance_computations == 30

    def test_distances_to_centroids(self, rng):
        x = rng.normal(size=4)
        C = rng.normal(size=(6, 4))
        got = distances_to_centroids(x, C)
        np.testing.assert_allclose(got, np.linalg.norm(C - x, axis=1), atol=1e-12)

    def test_distances_to_centroids_counts_k(self, rng):
        counters = OpCounters()
        distances_to_centroids(rng.normal(size=4), rng.normal(size=(6, 4)), counters)
        assert counters.distance_computations == 6


class TestCentroidMatrix:
    def test_symmetric_zero_diagonal(self, rng):
        C = rng.normal(size=(5, 3))
        cc = centroid_pairwise_distances(C)
        np.testing.assert_allclose(cc, cc.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(cc), 0.0, atol=1e-12)

    def test_counts_half_matrix(self, rng):
        counters = OpCounters()
        centroid_pairwise_distances(rng.normal(size=(5, 3)), counters)
        assert counters.distance_computations == 10  # k(k-1)/2

    def test_values_match_bruteforce(self, rng):
        C = rng.normal(size=(4, 6))
        cc = centroid_pairwise_distances(C)
        want = np.linalg.norm(C[:, None] - C[None, :], axis=2)
        np.testing.assert_allclose(cc, want, atol=1e-9)


class TestNorms:
    def test_matches_numpy(self, rng):
        X = rng.normal(size=(8, 5))
        np.testing.assert_allclose(norms(X), np.linalg.norm(X, axis=1), atol=1e-12)

    def test_single_row(self):
        assert norms(np.array([[3.0, 4.0]]))[0] == pytest.approx(5.0)
