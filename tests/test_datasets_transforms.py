"""Tests for preprocessing transforms."""

import numpy as np
import pytest

from repro.common.exceptions import NotFittedError, ValidationError
from repro.datasets.transforms import MinMaxScaler, PCAProjector, StandardScaler


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    return rng.normal([5.0, -3.0, 0.0], [2.0, 0.5, 1.0], size=(300, 3))


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, data):
        Z = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_no_nan(self):
        X = np.column_stack([np.ones(50), np.arange(50, dtype=float)])
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()

    def test_inverse_round_trip(self, data):
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(data)), data, atol=1e-9
        )

    def test_unfitted(self, data):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(data)

    def test_feature_mismatch(self, data):
        scaler = StandardScaler().fit(data)
        with pytest.raises(ValidationError):
            scaler.transform(data[:, :2])


class TestMinMaxScaler:
    def test_unit_interval(self, data):
        Z = MinMaxScaler().fit_transform(data)
        assert Z.min() >= 0.0 and Z.max() <= 1.0
        np.testing.assert_allclose(Z.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_applies_train_statistics(self, data):
        scaler = MinMaxScaler().fit(data[:100])
        Z = scaler.transform(data[100:])
        # Held-out data can exceed [0, 1]; the transform must not clip.
        assert np.isfinite(Z).all()

    def test_unfitted(self, data):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(data)


class TestPCAProjector:
    def test_recovers_dominant_direction(self):
        rng = np.random.default_rng(1)
        direction = np.array([3.0, 4.0]) / 5.0
        X = rng.normal(size=(500, 1)) * 10.0 @ direction[None, :]
        X += rng.normal(scale=0.1, size=X.shape)
        pca = PCAProjector(1, seed=0).fit(X)
        leading = pca.components_[0]
        assert abs(abs(leading @ direction) - 1.0) < 1e-3

    def test_components_orthonormal(self, data):
        pca = PCAProjector(2, seed=0).fit(data)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(2), atol=1e-8)

    def test_variance_sorted_descending(self, data):
        pca = PCAProjector(3, seed=0).fit(data)
        variances = pca.explained_variance_
        assert all(variances[i] >= variances[i + 1] - 1e-12 for i in range(2))

    def test_transform_shape(self, data):
        Z = PCAProjector(2, seed=0).fit_transform(data)
        assert Z.shape == (len(data), 2)

    def test_rejects_too_many_components(self, data):
        with pytest.raises(ValidationError):
            PCAProjector(10).fit(data)

    def test_rejects_zero_components(self):
        with pytest.raises(ValidationError):
            PCAProjector(0)

    def test_matches_numpy_eigendecomposition(self, data):
        pca = PCAProjector(3, seed=0, iterations=200).fit(data)
        cov = np.cov(data.T)
        eigvals = np.sort(np.linalg.eigvalsh(cov))[::-1]
        np.testing.assert_allclose(
            pca.explained_variance_, eigvals[:3], rtol=1e-4
        )


class TestRestarts:
    def test_best_is_minimum_of_history(self):
        from repro.core.restarts import fit_with_restarts
        from repro.datasets import make_blobs

        X, _ = make_blobs(300, 4, 5, seed=3)
        report = fit_with_restarts(X, 5, algorithm="lloyd", n_init=4, seed=0,
                                   max_iter=20)
        assert report.n_restarts == 4
        assert report.best.sse == pytest.approx(min(report.sse_history))

    def test_more_restarts_never_worse(self):
        from repro.core.restarts import fit_with_restarts
        from repro.datasets import make_blobs

        X, _ = make_blobs(300, 4, 6, seed=4)
        one = fit_with_restarts(X, 6, algorithm="lloyd", n_init=1, seed=7,
                                max_iter=20)
        many = fit_with_restarts(X, 6, algorithm="lloyd", n_init=6, seed=7,
                                 max_iter=20)
        assert many.best.sse <= one.best.sse + 1e-9

    def test_counters_aggregated(self):
        from repro.core.restarts import fit_with_restarts
        from repro.datasets import make_blobs

        X, _ = make_blobs(200, 3, 4, seed=5)
        report = fit_with_restarts(X, 4, algorithm="lloyd", n_init=3, seed=0,
                                   max_iter=10)
        single = report.best.counters.distance_computations
        assert report.total_counters.distance_computations > single

    def test_rejects_zero_restarts(self):
        from repro.common.exceptions import ConfigurationError
        from repro.core.restarts import fit_with_restarts

        with pytest.raises(ConfigurationError):
            fit_with_restarts(np.ones((10, 2)), 2, n_init=0)

    def test_works_with_accelerated_algorithms(self):
        from repro.core.restarts import fit_with_restarts
        from repro.datasets import make_blobs

        X, _ = make_blobs(250, 3, 4, seed=6)
        report = fit_with_restarts(X, 4, algorithm="yinyang", n_init=2, seed=0,
                                   max_iter=15)
        assert report.best.algorithm == "yinyang"
