"""Call-graph construction: determinism, SCC condensation, DOT output.

The effect fixpoint and the interprocedural rules assume two structural
properties pinned here: building the graph twice from the same sources
yields identical objects (no set-iteration leakage into the output), and
the SCC condensation is a DAG (what makes the fixpoint finite).
"""

import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.effects import compute_direct_effects, propagate_effects
from repro.analysis.graph import (
    CallGraph,
    build_call_graph,
    load_project,
    module_name_for_path,
    to_dot,
)
from repro.analysis.rules import ParsedModule

_FIXTURE = {
    "src/repro/core/a.py": """\
        from repro.core.b import helper

        GLOBAL = {}

        class Algo:
            def fit(self, X):
                return self.step(X)

            def step(self, X):
                return helper(X)

        def mutate():
            GLOBAL["x"] = 1
            mutate_again()

        def mutate_again():
            mutate()
        """,
    "src/repro/core/b.py": """\
        def helper(X):
            return X
        """,
}


def _parse_fixture():
    return {
        path: ParsedModule.parse(path, textwrap.dedent(source))
        for path, source in _FIXTURE.items()
    }


def _build():
    project = load_project(_parse_fixture())
    return project, build_call_graph(project)


class TestModuleNames:
    def test_src_prefix_dropped(self):
        assert module_name_for_path("src/repro/core/base.py") == "repro.core.base"

    def test_init_maps_to_package(self):
        assert module_name_for_path("src/repro/__init__.py") == "repro"

    def test_no_src_segment(self):
        assert module_name_for_path("repro/core/base.py") == "repro.core.base"


class TestDeterminism:
    def test_two_builds_are_identical(self):
        project_a, graph_a = _build()
        project_b, graph_b = _build()
        assert graph_a.edges == graph_b.edges
        assert sorted(project_a.functions) == sorted(project_b.functions)
        assert project_a.imports == project_b.imports
        assert graph_a.condensation() == graph_b.condensation()

    def test_cross_module_and_self_edges_resolved(self):
        _, graph = _build()
        assert "repro.core.b.helper" in graph.callees("repro.core.a.Algo.step")
        assert "repro.core.a.Algo.step" in graph.callees("repro.core.a.Algo.fit")

    def test_mutual_recursion_is_one_component(self):
        _, graph = _build()
        components, edges = graph.condensation()
        cycle = ("repro.core.a.mutate", "repro.core.a.mutate_again")
        assert tuple(sorted(cycle)) in components


# Random graphs over a small node alphabet: the condensation must always
# partition the nodes and its inter-component edges must form a DAG.
_NODES = [f"n{i}" for i in range(8)]
_edges_strategy = st.dictionaries(
    st.sampled_from(_NODES),
    st.lists(
        st.tuples(st.sampled_from(_NODES), st.sampled_from(["direct", "fuzzy"])),
        max_size=6,
        unique_by=lambda pair: pair[0],
    ).map(tuple),
    max_size=8,
)


class TestCondensationProperties:
    @settings(max_examples=200, deadline=None)
    @given(edges=_edges_strategy)
    def test_condensation_partitions_and_is_acyclic(self, edges):
        graph = CallGraph(edges=edges)
        components, comp_edges = graph.condensation()
        # Partition: every node in exactly one component.
        flat = [node for component in components for node in component]
        assert len(flat) == len(set(flat))
        expected = set(edges) | {
            callee for pairs in edges.values() for callee, _ in pairs
        }
        assert set(flat) == expected
        # DAG: Kahn's algorithm consumes every component.
        indegree = {i: 0 for i in range(len(components))}
        successors = {i: [] for i in range(len(components))}
        for a, b in comp_edges:
            assert a != b
            successors[a].append(b)
            indegree[b] += 1
        ready = [i for i, deg in indegree.items() if deg == 0]
        seen = 0
        while ready:
            current = ready.pop()
            seen += 1
            for nxt in successors[current]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        assert seen == len(components)

    @settings(max_examples=100, deadline=None)
    @given(edges=_edges_strategy)
    def test_condensation_deterministic(self, edges):
        graph = CallGraph(edges=edges)
        assert graph.condensation() == graph.condensation()


class TestEffectPropagation:
    def test_effects_flow_up_call_chain(self):
        project, graph = _build()
        direct = compute_direct_effects(project)
        transitive = propagate_effects(direct, graph)
        assert "mutates-global" in direct.get("repro.core.a.mutate")
        # The caller inherits through the cycle.
        assert "mutates-global" in transitive["repro.core.a.mutate_again"]
        # The clean helper has no effects at all.
        assert not transitive.get("repro.core.b.helper", frozenset())


class TestDot:
    def test_dot_carries_effect_labels(self):
        project, graph = _build()
        direct = compute_direct_effects(project)
        transitive = propagate_effects(direct, graph)
        dot = to_dot(project, graph, transitive)
        assert dot.startswith("digraph repro_calls {")
        assert dot.rstrip().endswith("}")
        assert 'label="repro.core.a";' in dot
        assert "[mutates-global]" in dot
        assert (
            '"repro.core.a.Algo.fit" -> "repro.core.a.Algo.step";' in dot
        )
        # Fuzzy edges are excluded by default, dashed when included.
        assert "style=dashed" not in dot
        dot_fuzzy = to_dot(project, graph, transitive, include_fuzzy=True)
        assert dot_fuzzy.count("->") >= dot.count("->")
