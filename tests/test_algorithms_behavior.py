"""Behavioral characteristics of individual algorithms: footprints,
counter profiles, and the paper's qualitative claims."""

import numpy as np
import pytest

from repro.core import make_algorithm
from repro.core.drake import DrakeKMeans
from repro.core.elkan import ElkanKMeans
from repro.core.hamerly import HamerlyKMeans
from repro.core.heap import HeapKMeans
from repro.core.pami20 import Pami20KMeans
from repro.core.vector import VectorKMeans
from repro.core.yinyang import YinyangKMeans
from repro.core.vector import block_norms


@pytest.fixture(scope="module")
def task(blobs_medium_module):
    return blobs_medium_module


@pytest.fixture(scope="module")
def blobs_medium_module():
    from repro.datasets import make_blobs

    X, _ = make_blobs(900, 10, 8, seed=13)
    return X


class TestFootprints:
    """Figure 10: the memory ordering of the methods' auxiliary state."""

    def test_elkan_largest_sequential(self, task):
        k = 20
        elkan = ElkanKMeans().fit(task, k, seed=0, max_iter=5)
        hamerly = HamerlyKMeans().fit(task, k, seed=0, max_iter=5)
        yinyang = YinyangKMeans().fit(task, k, seed=0, max_iter=5)
        assert elkan.footprint_floats > yinyang.footprint_floats
        assert yinyang.footprint_floats > hamerly.footprint_floats

    def test_pami20_smallest(self, task):
        k = 20
        pami = Pami20KMeans().fit(task, k, seed=0, max_iter=5)
        hamerly = HamerlyKMeans().fit(task, k, seed=0, max_iter=5)
        assert pami.footprint_floats < hamerly.footprint_floats
        assert pami.footprint_floats == k

    def test_elkan_footprint_scales_with_k(self, task):
        small = ElkanKMeans().fit(task, 5, seed=0, max_iter=3).footprint_floats
        large = ElkanKMeans().fit(task, 40, seed=0, max_iter=3).footprint_floats
        assert large > small

    def test_heap_smaller_than_elkan(self, task):
        heap = HeapKMeans().fit(task, 20, seed=0, max_iter=5)
        elkan = ElkanKMeans().fit(task, 20, seed=0, max_iter=5)
        assert heap.footprint_floats < elkan.footprint_floats


class TestCounterProfiles:
    """Figure 11 / Table 3: who pays in bound accesses vs distances."""

    def test_elkan_heavy_bound_updates(self, task):
        k = 20
        elkan = ElkanKMeans().fit(task, k, seed=0, max_iter=8)
        yinyang = YinyangKMeans().fit(task, k, seed=0, max_iter=8)
        # Elkan drift-corrects n*k bounds per iteration; Yinyang only n*t.
        assert elkan.counters.bound_updates > 2 * yinyang.counters.bound_updates

    def test_heap_fewest_bound_accesses(self, task):
        k = 20
        heap = HeapKMeans().fit(task, k, seed=0, max_iter=8)
        hamerly = HamerlyKMeans().fit(task, k, seed=0, max_iter=8)
        elkan = ElkanKMeans().fit(task, k, seed=0, max_iter=8)
        assert heap.counters.bound_accesses < hamerly.counters.bound_accesses
        assert heap.counters.bound_accesses < elkan.counters.bound_accesses

    def test_all_prune_distances_vs_lloyd(self, task):
        k = 20
        lloyd = make_algorithm("lloyd").fit(task, k, seed=0, max_iter=8)
        for name in ["elkan", "hamerly", "yinyang", "drake", "exponion"]:
            accelerated = make_algorithm(name).fit(task, k, seed=0, max_iter=8)
            assert (
                accelerated.counters.distance_computations
                < lloyd.counters.distance_computations
            ), name

    def test_index_fewer_point_accesses(self, task):
        k = 10
        lloyd = make_algorithm("lloyd").fit(task, k, seed=0, max_iter=8)
        index = make_algorithm("index").fit(task, k, seed=0, max_iter=8)
        assert index.counters.point_accesses < lloyd.counters.point_accesses
        assert index.counters.node_accesses > 0


class TestDrakeSpecifics:
    def test_default_b_quarter_k(self, task):
        algo = DrakeKMeans()
        algo.fit(task, 20, seed=0, max_iter=3)
        assert algo.b == 5

    def test_explicit_b_clamped(self, task):
        algo = DrakeKMeans(b=99)
        algo.fit(task, 10, seed=0, max_iter=3)
        assert algo.b <= 9


class TestVectorSpecifics:
    def test_block_norms_shape_and_values(self):
        X = np.array([[3.0, 4.0, 0.0, 0.0], [0.0, 0.0, 5.0, 12.0]])
        B = block_norms(X, 2)
        np.testing.assert_allclose(B, [[5.0, 0.0], [0.0, 13.0]])

    def test_block_bound_is_lower_bound(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 8))
        C = rng.normal(size=(6, 8))
        xb = block_norms(X, 2)
        cb = block_norms(C, 2)
        xn = np.einsum("ij,ij->i", X, X)
        cn = np.einsum("ij,ij->i", C, C)
        for i in range(len(X)):
            for j in range(len(C)):
                sq = xn[i] + cn[j] - 2.0 * float(xb[i] @ cb[j])
                bound = np.sqrt(max(sq, 0.0))
                true = np.linalg.norm(X[i] - C[j])
                assert bound <= true + 1e-9

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError, match="blocks"):
            VectorKMeans(blocks=0)

    def test_blocks_clamped_to_dimension(self):
        X = np.random.default_rng(0).normal(size=(60, 2))
        algo = VectorKMeans(blocks=8)
        algo.fit(X, 3, seed=0, max_iter=5)
        assert algo.blocks == 2


class TestYinyangSpecifics:
    def test_group_count_default(self, task):
        algo = YinyangKMeans()
        algo.fit(task, 25, seed=0, max_iter=3)
        assert algo.groups.t == 3  # ceil(25/10)

    def test_explicit_group_count(self, task):
        algo = YinyangKMeans(t=5)
        algo.fit(task, 25, seed=0, max_iter=3)
        assert algo.groups.t == 5

    def test_single_group_degenerates_gracefully(self, task, centroids_factory):
        from repro.core.lloyd import LloydKMeans

        C0 = centroids_factory(task, 12)
        base = LloydKMeans().fit(task, 12, initial_centroids=C0, max_iter=40)
        result = YinyangKMeans(t=1).fit(task, 12, initial_centroids=C0, max_iter=40)
        np.testing.assert_array_equal(result.labels, base.labels)


class TestPami20Specifics:
    def test_radii_cover_members(self, task):
        algo = Pami20KMeans()
        result = algo.fit(task, 10, seed=0, max_iter=6)
        # After the final assignment the stored radii (inflated by drifts)
        # must cover every member's distance to its centroid.
        dists = np.linalg.norm(task - result.centroids[result.labels], axis=1)
        for j in range(10):
            members = dists[result.labels == j]
            if len(members):
                assert members.max() <= algo._radii[j] + 1e-6
