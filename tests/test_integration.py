"""Integration tests: full workflows across subsystems."""

import numpy as np

from repro import KMeans
from repro.core import build_algorithm
from repro.datasets import load_dataset
from repro.datasets.loaders import append_jsonl, read_jsonl
from repro.eval import Leaderboard, compare_algorithms, speedup_table
from repro.tuning import UTune, GroundTruthRecord, generate_ground_truth


class TestClusteringWorkflow:
    """Dataset registry -> facade -> result, across algorithm families."""

    def test_registry_to_result(self):
        X = load_dataset("RoadNetwork", n=500, seed=0)
        result = KMeans(k=8, algorithm="unik", seed=0, max_iter=10).fit(X)
        assert result.converged or result.n_iter == 10
        assert len(np.unique(result.labels)) <= 8

    def test_all_families_agree_on_quality(self):
        X = load_dataset("Skin", n=400, seed=1)
        from repro.core.initialization import init_kmeans_plus_plus

        C0 = init_kmeans_plus_plus(X, 6, seed=5)
        sses = []
        for algorithm in ["lloyd", "yinyang", "index", "unik"]:
            result = KMeans(k=6, algorithm=algorithm).fit(X, initial_centroids=C0)
            sses.append(result.sse)
        assert max(sses) - min(sses) < 1e-6 * (1 + min(sses))


class TestEvaluationWorkflow:
    """Harness -> leaderboard -> speedups, the Figure 8/12 pipeline."""

    def test_leaderboard_over_tasks(self):
        board = Leaderboard()
        for name in ["NYC-Taxi", "Covtype"]:
            X = load_dataset(name, n=400, seed=0)
            records = compare_algorithms(
                ["hamerly", "yinyang", "index"], X, 6, repeats=1, max_iter=5
            )
            board.add_task(records)
        assert board.tasks == 2
        assert sum(board.top1.values()) == 2

    def test_speedup_pipeline(self):
        X = load_dataset("KeggUndirect", n=500, seed=0)
        records = compare_algorithms(
            ["lloyd", "elkan", "yinyang", "unik"], X, 10, repeats=1, max_iter=8
        )
        table = speedup_table(records)
        # All accelerated methods do less distance work than Lloyd.
        for name in ["elkan", "yinyang", "unik"]:
            assert table[name]["work"] > 1.0


class TestSelectionWorkflow:
    """Ground truth -> log file -> UTune -> config -> algorithm run."""

    def test_full_utune_cycle(self, tmp_path):
        tasks = []
        for name in ["NYC-Taxi", "Covtype", "Mnist"]:
            X = load_dataset(name, n=300 if name != "Mnist" else 120, seed=0)
            tasks.append((name, X, 5))
        records = generate_ground_truth(tasks, selective=True, max_iter=4)

        # Persist and reload the evaluation log (the offline-logs workflow).
        log = tmp_path / "groundtruth.jsonl"
        append_jsonl(log, [record.as_dict() for record in records])
        reloaded = [GroundTruthRecord.from_dict(r) for r in read_jsonl(log)]
        assert len(reloaded) == len(records)

        tuner = UTune(model="dt").fit(reloaded)
        X_new = load_dataset("Europe", n=300, seed=3)
        config = tuner.predict_config(X_new, 5)
        algorithm = build_algorithm(config)
        result = algorithm.fit(X_new, 5, seed=0, max_iter=5)
        assert result.n_iter >= 1

    def test_predicted_config_is_competitive(self):
        # The predicted configuration should not be drastically slower than
        # the best configuration on a task drawn from the training family.
        tasks = []
        for seed in range(3):
            X = load_dataset("NYC-Taxi", n=400, seed=seed)
            tasks.append((f"nyc{seed}", X, 8))
        records = generate_ground_truth(tasks, selective=True, max_iter=4)
        tuner = UTune(model="dt").fit(records)

        X_test = load_dataset("NYC-Taxi", n=400, seed=99)
        config = tuner.predict_config(X_test, 8)
        predicted = build_algorithm(config).fit(X_test, 8, seed=0, max_iter=4)
        lloyd = KMeans(k=8, algorithm="lloyd", max_iter=4, seed=0).fit(X_test)
        assert predicted.modeled_cost < lloyd.modeled_cost * 1.5
