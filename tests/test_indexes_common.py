"""Tests shared by all five index structures: Definition 1 invariants,
range search correctness, stats and space accounting."""

import numpy as np
import pytest

from repro.datasets import make_blobs
from repro.indexes import INDEX_CLASSES, build_index
from repro.instrumentation.counters import OpCounters

ALL_INDEXES = sorted(INDEX_CLASSES)


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(400, 5, 6, seed=23)
    return X


@pytest.mark.parametrize("name", ALL_INDEXES)
class TestDefinitionOneInvariants:
    def test_invariants_hold(self, name, data):
        tree = build_index(name, data)
        tree.check_invariants()

    def test_root_covers_everything(self, name, data):
        tree = build_index(name, data)
        assert tree.root.num == len(data)
        np.testing.assert_allclose(tree.root.sv, data.sum(axis=0), atol=1e-6)

    def test_root_pivot_is_global_mean(self, name, data):
        tree = build_index(name, data)
        np.testing.assert_allclose(tree.root.pivot, data.mean(axis=0), atol=1e-8)

    def test_leaves_partition_points(self, name, data):
        tree = build_index(name, data)
        collected = np.sort(tree.root.subtree_point_indices())
        np.testing.assert_array_equal(collected, np.arange(len(data)))

    def test_heights_consistent(self, name, data):
        tree = build_index(name, data)
        for node in tree.root.iter_subtree():
            if not node.is_leaf:
                assert node.height == 1 + max(c.height for c in node.children)

    def test_stats_counts_match(self, name, data):
        tree = build_index(name, data)
        stats = tree.stats()
        assert stats.n_nodes == tree.node_count()
        assert stats.n_leaves == len(tree.leaves())

    def test_space_cost_positive_and_scales(self, name, data):
        tree = build_index(name, data)
        small = build_index(name, data[:100])
        assert tree.space_cost_floats() > small.space_cost_floats() > 0

    def test_construction_counts_distances(self, name, data):
        tree = build_index(name, data)
        # Even the kd-tree (coordinate splits) charges its leaf-radius
        # scans and pivot gaps now; see tests/test_counter_parity.py.
        assert tree.counters.distance_computations > 0


@pytest.mark.parametrize("name", ALL_INDEXES)
class TestRangeSearch:
    def test_matches_bruteforce(self, name, data):
        tree = build_index(name, data)
        center = data.mean(axis=0)
        for radius in [0.5, 2.0, 10.0]:
            hits = set(tree.range_search(center, radius))
            brute = set(
                np.flatnonzero(np.linalg.norm(data - center, axis=1) <= radius)
            )
            assert hits == brute

    def test_empty_result(self, name, data):
        tree = build_index(name, data)
        far = data.max(axis=0) + 1000.0
        assert len(tree.range_search(far, 0.5)) == 0

    def test_full_coverage(self, name, data):
        tree = build_index(name, data)
        hits = tree.range_search(data.mean(axis=0), 1e9)
        assert len(hits) == len(data)

    def test_counts_node_accesses(self, name, data):
        tree = build_index(name, data)
        counters = OpCounters()
        tree.range_search(data[0], 1.0, counters)
        assert counters.node_accesses >= 1


class TestSingularData:
    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_duplicate_points(self, name):
        X = np.ones((64, 3))
        tree = build_index(name, X)
        tree.check_invariants()
        assert tree.root.num == 64
        assert tree.root.radius <= 1e-9

    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_tiny_dataset(self, name):
        X = np.random.default_rng(0).normal(size=(3, 2))
        tree = build_index(name, X)
        tree.check_invariants()

    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_single_point(self, name):
        tree = build_index(name, np.array([[1.0, 2.0]]))
        assert tree.root.is_leaf
        assert tree.root.num == 1


class TestBuildIndexDispatch:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown index"):
            build_index("r-tree", np.ones((5, 2)))

    def test_case_insensitive(self):
        tree = build_index("BALL-TREE", np.random.default_rng(0).normal(size=(50, 2)))
        assert tree.name == "ball-tree"
