"""Tests for the clustering quality metrics."""

import numpy as np
import pytest

from repro.common.exceptions import ValidationError
from repro.datasets import make_blobs
from repro.eval.quality import (
    adjusted_rand_index,
    calinski_harabasz,
    davies_bouldin,
    normalized_mutual_info,
    silhouette_score,
    sse,
)


@pytest.fixture(scope="module")
def separated():
    """Two well-separated clusters with known labels."""
    rng = np.random.default_rng(0)
    X = np.vstack([
        rng.normal(0.0, 0.2, size=(60, 2)),
        rng.normal(8.0, 0.2, size=(60, 2)),
    ])
    labels = np.repeat([0, 1], 60)
    return X, labels


class TestSse:
    def test_zero_for_points_on_centroids(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        centroids = X.copy()
        assert sse(X, np.array([0, 1]), centroids) == 0.0

    def test_matches_manual(self, separated):
        X, labels = separated
        centroids = np.vstack([X[labels == 0].mean(0), X[labels == 1].mean(0)])
        manual = sum(
            np.linalg.norm(X[i] - centroids[labels[i]]) ** 2 for i in range(len(X))
        )
        assert sse(X, labels, centroids) == pytest.approx(manual)


class TestSilhouette:
    def test_high_for_separated(self, separated):
        X, labels = separated
        assert silhouette_score(X, labels, sample_size=None) > 0.9

    def test_low_for_random_labels(self, separated):
        X, _ = separated
        random_labels = np.random.default_rng(1).integers(0, 2, size=len(X))
        good, _ = separated[1], None
        assert silhouette_score(X, random_labels, sample_size=None) < 0.3

    def test_subsampling_close_to_full(self, separated):
        X, labels = separated
        full = silhouette_score(X, labels, sample_size=None)
        sampled = silhouette_score(X, labels, sample_size=40, seed=0)
        assert abs(full - sampled) < 0.1

    def test_single_cluster_rejected(self, separated):
        X, _ = separated
        with pytest.raises(ValidationError):
            silhouette_score(X, np.zeros(len(X), dtype=int))


class TestDaviesBouldin:
    def test_lower_for_separated(self, separated):
        X, labels = separated
        good = davies_bouldin(X, labels)
        bad = davies_bouldin(X, np.random.default_rng(2).integers(0, 2, len(X)))
        assert good < bad

    def test_requires_two_clusters(self, separated):
        X, _ = separated
        with pytest.raises(ValidationError):
            davies_bouldin(X, np.zeros(len(X), dtype=int))


class TestCalinskiHarabasz:
    def test_higher_for_separated(self, separated):
        X, labels = separated
        good = calinski_harabasz(X, labels)
        bad = calinski_harabasz(X, np.random.default_rng(3).integers(0, 2, len(X)))
        assert good > bad

    def test_bounds_on_k(self, separated):
        X, _ = separated
        with pytest.raises(ValidationError):
            calinski_harabasz(X, np.zeros(len(X), dtype=int))


class TestLabelAgreement:
    def test_ari_identical(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_ari_permutation_invariant(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_ari_near_zero_for_random(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 4, size=2000)
        b = rng.integers(0, 4, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_ari_length_mismatch(self):
        with pytest.raises(ValidationError):
            adjusted_rand_index(np.array([0, 1]), np.array([0]))

    def test_nmi_identical(self):
        labels = np.array([0, 1, 1, 2, 2, 2])
        assert normalized_mutual_info(labels, labels) == pytest.approx(1.0)

    def test_nmi_independent_low(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 3, size=3000)
        b = rng.integers(0, 3, size=3000)
        assert normalized_mutual_info(a, b) < 0.05

    def test_nmi_permutation_invariant(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert normalized_mutual_info(a, b) == pytest.approx(1.0)


class TestApproximateMethodsQuality:
    def test_minibatch_high_ari_vs_lloyd(self):
        from repro.core import make_algorithm

        X, _ = make_blobs(800, 4, 5, cluster_std=0.3, seed=9)
        lloyd = make_algorithm("lloyd").fit(X, 5, seed=0, max_iter=30)
        mb = make_algorithm("minibatch").fit(X, 5, seed=0, max_iter=30)
        assert adjusted_rand_index(lloyd.labels, mb.labels) > 0.7
