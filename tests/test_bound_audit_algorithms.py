"""Bound-audit sweep over the sequential algorithms (linter's runtime sibling).

The static analyzer (``repro.analysis``) enforces the *counting* contract;
:mod:`repro.diagnostics.bound_audit` enforces the *soundness* contract —
every stored bound must actually bound the true distance.  This module runs
the brute-force oracle against each sequential bound-based algorithm the
issue names, on a small synthetic dataset, under a shared deterministic
initialization, and asserts zero :class:`BoundViolation`\\ s.
"""

import numpy as np
import pytest

from repro.core import make_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import make_blobs
from repro.diagnostics import audit_algorithm

SEQUENTIAL_ALGORITHMS = [
    "elkan", "hamerly", "drake", "annular", "exponion", "yinyang", "regroup",
]

K = 6


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(240, 4, K, seed=7)
    return X


@pytest.fixture(scope="module")
def shared_init(data):
    return init_kmeans_plus_plus(data, K, seed=3)


@pytest.mark.parametrize("name", SEQUENTIAL_ALGORITHMS)
def test_sequential_algorithm_bounds_are_sound(name, data, shared_init):
    algorithm = make_algorithm(name)
    audit = audit_algorithm(
        algorithm, data, K, max_iter=12, initial_centroids=shared_init.copy()
    )
    assert audit.iterations_audited > 0
    assert audit.ok, (
        f"{name}: {len(audit.violations)} bound violation(s); "
        f"first: {audit.violations[:3]}"
    )


@pytest.mark.parametrize("name", SEQUENTIAL_ALGORITHMS)
def test_audited_run_matches_lloyd_labels(name, data, shared_init):
    # The audit hooks _update_bounds but must not perturb the trajectory:
    # every exact method still lands on Lloyd's labels from the same start.
    lloyd = make_algorithm("lloyd").fit(
        data, K, initial_centroids=shared_init.copy(), max_iter=12
    )
    algorithm = make_algorithm(name)
    audit_algorithm(
        algorithm, data, K, max_iter=12, initial_centroids=shared_init.copy()
    )
    np.testing.assert_array_equal(algorithm._labels, lloyd.labels)
