"""Tests for the approximate accelerations (mini-batch and sampled)."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.core import make_algorithm
from repro.core.lloyd import LloydKMeans
from repro.core.minibatch import MiniBatchKMeans, SampledKMeans
from repro.datasets import make_blobs


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(1000, 6, 6, cluster_std=0.5, seed=61)
    return X


class TestMiniBatch:
    def test_runs_and_labels_valid(self, data):
        result = MiniBatchKMeans(batch_size=128).fit(data, 6, seed=0, max_iter=15)
        assert result.labels.shape == (len(data),)
        assert 0 <= result.labels.min() and result.labels.max() < 6

    def test_sse_close_to_lloyd(self, data):
        lloyd = LloydKMeans().fit(data, 6, seed=0, max_iter=30)
        mb = MiniBatchKMeans(batch_size=256).fit(data, 6, seed=0, max_iter=30)
        # Approximate: bounded inflation, not equality.
        assert mb.sse <= lloyd.sse * 1.5

    def test_deterministic(self, data):
        a = MiniBatchKMeans(batch_size=64, batch_seed=3).fit(data, 4, seed=1, max_iter=10)
        b = MiniBatchKMeans(batch_size=64, batch_seed=3).fit(data, 4, seed=1, max_iter=10)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_rejects_zero_batch(self):
        with pytest.raises(Exception):
            MiniBatchKMeans(batch_size=0)

    def test_registered(self, data):
        result = make_algorithm("minibatch").fit(data, 3, seed=0, max_iter=5)
        assert result.algorithm == "minibatch"


class TestSampled:
    def test_runs_with_inner_unik(self, data):
        result = SampledKMeans(sample_fraction=0.2, inner="unik").fit(
            data, 6, seed=0, max_iter=3
        )
        assert result.labels.shape == (len(data),)

    def test_sse_close_to_lloyd(self, data):
        lloyd = LloydKMeans().fit(data, 6, seed=0, max_iter=30)
        sampled = SampledKMeans(sample_fraction=0.3).fit(data, 6, seed=0, max_iter=3)
        assert sampled.sse <= lloyd.sse * 1.5

    def test_inner_counters_merged(self, data):
        algo = SampledKMeans(sample_fraction=0.2, inner="yinyang")
        result = algo.fit(data, 5, seed=0, max_iter=2)
        # The inner run's distances are charged to the outer counters,
        # on top of the full-assignment passes.
        full_passes = result.n_iter * len(data) * 5
        assert result.counters.distance_computations > full_passes

    def test_rejects_zero_fraction(self):
        with pytest.raises(ConfigurationError):
            SampledKMeans(sample_fraction=0.0)

    def test_rejects_fraction_above_one(self):
        with pytest.raises(Exception):
            SampledKMeans(sample_fraction=1.5)

    def test_small_k_on_tiny_sample(self, data):
        # Sample smaller than k must still produce k centroids overall.
        result = SampledKMeans(sample_fraction=0.01, min_sample=10).fit(
            data, 8, seed=0, max_iter=2
        )
        assert result.centroids.shape == (8, data.shape[1])
