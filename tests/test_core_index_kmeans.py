"""White-box tests for the index filtering algorithm (Section 3)."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.core.index_kmeans import IndexKMeans
from repro.core.initialization import init_kmeans_plus_plus
from repro.core.lloyd import LloydKMeans
from repro.datasets import make_blobs, make_grid_clusters
from repro.indexes import BallTree


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(500, 4, 7, seed=131)
    return X


class TestConstruction:
    def test_rejects_unknown_index(self):
        with pytest.raises(ConfigurationError, match="unknown index"):
            IndexKMeans(index="vp-tree")

    def test_accepts_prebuilt_tree(self, data):
        tree = BallTree(data, capacity=20)
        algo = IndexKMeans(tree=tree)
        algo.fit(data, 5, seed=0, max_iter=3)
        assert algo.tree is tree

    def test_prebuilt_tree_for_other_data_rebuilt(self, data):
        other, _ = make_blobs(200, 4, 3, seed=5)
        tree = BallTree(other, capacity=20)
        algo = IndexKMeans(tree=tree)
        algo.fit(data, 5, seed=0, max_iter=3)
        assert algo.tree.X is algo.X  # stale tree replaced

    def test_name_reflects_index(self):
        assert IndexKMeans(index="kd-tree").name == "index-kd-tree"


class TestCandidateFiltering:
    def test_filter_soundness_invariant(self, data):
        """For every node and surviving candidate set: the true nearest of
        every covered point is always among the candidates that reach it."""
        algo = IndexKMeans(index="ball-tree")
        C0 = init_kmeans_plus_plus(data, 8, seed=0)
        algo.fit(data, 8, initial_centroids=C0, max_iter=1)
        # One iteration assigns against C0 (labels), then refines the
        # centroids; reconstruct that assignment by brute force.
        dists = np.linalg.norm(data[:, None, :] - C0[None, :, :], axis=2)
        np.testing.assert_array_equal(algo._labels, np.argmin(dists, axis=1))

    def test_batch_assignment_fires_on_assembled_data(self):
        X = make_grid_clusters(600, 2, side=3, jitter=0.01, seed=1)
        algo = IndexKMeans(index="ball-tree")
        result = algo.fit(X, 9, seed=0, max_iter=8)
        # Batch pruning must save most per-point distance computations.
        assert result.pruning_ratio > 0.5
        assert result.counters.node_accesses > 0

    def test_kd_hyperplane_variant_exact(self, data, centroids_factory):
        C0 = centroids_factory(data, 6)
        base = LloydKMeans().fit(data, 6, initial_centroids=C0, max_iter=40)
        result = IndexKMeans(index="kd-tree").fit(
            data, 6, initial_centroids=C0, max_iter=40
        )
        np.testing.assert_array_equal(result.labels, base.labels)

    def test_kd_uses_hyperplane_flag(self, data):
        algo = IndexKMeans(index="kd-tree")
        algo.fit(data, 4, seed=0, max_iter=2)
        assert algo._use_hyperplane
        ball = IndexKMeans(index="ball-tree")
        ball.fit(data, 4, seed=0, max_iter=2)
        assert not ball._use_hyperplane


class TestIncrementalSums:
    def test_sums_rebuilt_each_iteration(self, data):
        algo = IndexKMeans(index="ball-tree")
        result = algo.fit(data, 6, seed=0, max_iter=5)
        assert algo._counts.sum() == len(data)
        for j in range(6):
            members = data[result.labels == j]
            if len(members):
                np.testing.assert_allclose(
                    algo._sums[j], members.sum(axis=0), atol=1e-6
                )

    def test_refinement_reads_nothing(self, data):
        algo = IndexKMeans(index="ball-tree")
        result = algo.fit(data, 6, seed=0, max_iter=5)
        # All point accesses happen in assignment; refinement mode "none".
        assignment_accesses = sum(
            stats.point_accesses for stats in result.iteration_stats
        )
        assert assignment_accesses == result.counters.point_accesses

    def test_extras_reports_index_info(self, data):
        result = IndexKMeans(index="hkt").fit(data, 5, seed=0, max_iter=3)
        assert result.extras["index"] == "hkt"
        assert result.extras["index_nodes"] > 0


class TestKnobIndexStructure:
    def test_config_index_structure_flows_through(self, data):
        from repro.core import KnobConfig, build_algorithm

        algo = build_algorithm(KnobConfig(index="pure", index_structure="hkt"))
        algo.fit(data, 4, seed=0, max_iter=2)
        assert algo.tree.name == "hkt"

    def test_unik_index_structure(self, data):
        from repro.core import KnobConfig, build_algorithm

        algo = build_algorithm(KnobConfig(index="single", index_structure="m-tree"))
        algo.fit(data, 4, seed=0, max_iter=2)
        assert algo.tree.name == "m-tree"
