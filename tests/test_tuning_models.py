"""Tests for the from-scratch classifier substrate."""

import numpy as np
import pytest

from repro.common.exceptions import NotFittedError, ValidationError
from repro.tuning.models import (
    MODEL_CLASSES,
    DecisionTreeClassifier,
    KNeighborsClassifier,
    LabelEncoder,
    RandomForestClassifier,
    accuracy_score,
    confusion_matrix,
    make_model,
)
from repro.tuning.models.metrics import train_test_split

ALL_MODELS = sorted(MODEL_CLASSES)


@pytest.fixture(scope="module")
def easy_task():
    """Linearly separable 3-class task every model must ace."""
    rng = np.random.default_rng(7)
    n = 240
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
    y = rng.integers(0, 3, size=n)
    X = centers[y] + rng.normal(0, 0.5, size=(n, 2))
    labels = [f"c{v}" for v in y]
    return X, labels


class TestLabelEncoder:
    def test_round_trip(self):
        enc = LabelEncoder()
        codes = enc.fit_transform(["b", "a", "b", "c"])
        assert enc.classes_ == ["a", "b", "c"]
        assert enc.inverse_transform(codes) == ["b", "a", "b", "c"]

    def test_unseen_label(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValidationError, match="unseen"):
            enc.transform(["z"])

    def test_used_before_fit(self):
        with pytest.raises(NotFittedError):
            LabelEncoder().transform(["a"])


@pytest.mark.parametrize("name", ALL_MODELS)
class TestAllModels:
    def test_high_accuracy_on_separable_task(self, name, easy_task):
        X, labels = easy_task
        Xtr, ytr, Xte, yte = train_test_split(X, labels, seed=0)
        model = make_model(name).fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.9

    def test_predict_before_fit_raises(self, name, easy_task):
        X, _ = easy_task
        with pytest.raises(NotFittedError):
            make_model(name).predict(X)

    def test_rank_contains_all_classes(self, name, easy_task):
        X, labels = easy_task
        model = make_model(name).fit(X, labels)
        ranking = model.rank(X[:1])[0]
        assert sorted(ranking) == sorted(set(labels))

    def test_scores_shape(self, name, easy_task):
        X, labels = easy_task
        model = make_model(name).fit(X, labels)
        scores = model.decision_scores(X[:5])
        assert scores.shape == (5, 3)

    def test_single_row_predict(self, name, easy_task):
        X, labels = easy_task
        model = make_model(name).fit(X, labels)
        assert model.predict(X[0]) [0] in set(labels)

    def test_mismatched_lengths(self, name, easy_task):
        X, labels = easy_task
        with pytest.raises(ValidationError):
            make_model(name).fit(X, labels[:-1])

    def test_single_class_degenerate(self, name):
        X = np.random.default_rng(0).normal(size=(20, 3))
        model = make_model(name).fit(X, ["only"] * 20)
        assert model.predict(X[:3]) == ["only"] * 3


class TestDecisionTreeSpecifics:
    def test_depth_limit(self, easy_task):
        X, labels = easy_task
        tree = DecisionTreeClassifier(max_depth=2).fit(X, labels)
        assert tree.depth() <= 2

    def test_deeper_fits_better_on_train(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(150, 4))
        labels = [str(v) for v in (X[:, 0] * X[:, 1] > 0).astype(int)]
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, labels)
        deep = DecisionTreeClassifier(max_depth=8).fit(X, labels)
        assert accuracy_score(labels, deep.predict(X)) >= accuracy_score(
            labels, shallow.predict(X)
        )

    def test_min_samples_leaf(self, easy_task):
        X, labels = easy_task
        tree = DecisionTreeClassifier(min_samples_leaf=50).fit(X, labels)
        # Large leaf minimum forces a shallow tree.
        assert tree.depth() <= 3

    def test_constant_features_yield_leaf(self):
        X = np.ones((30, 2))
        labels = ["a"] * 15 + ["b"] * 15
        tree = DecisionTreeClassifier().fit(X, labels)
        assert tree.depth() == 0


class TestRandomForestSpecifics:
    def test_deterministic_with_seed(self, easy_task):
        X, labels = easy_task
        a = RandomForestClassifier(n_estimators=5, seed=1).fit(X, labels)
        b = RandomForestClassifier(n_estimators=5, seed=1).fit(X, labels)
        assert a.predict(X) == b.predict(X)

    def test_max_features_resolution(self, easy_task):
        X, labels = easy_task
        forest = RandomForestClassifier(n_estimators=2, max_features="sqrt")
        forest.fit(X, labels)
        assert forest._resolve_max_features(X.shape[1]) == 1


class TestKNNSpecifics:
    def test_k_one_memorizes_training_set(self, easy_task):
        X, labels = easy_task
        model = KNeighborsClassifier(n_neighbors=1).fit(X, labels)
        assert accuracy_score(labels, model.predict(X)) == 1.0

    def test_standardization_matters(self):
        # A huge-scale nuisance feature must not dominate the vote.
        rng = np.random.default_rng(1)
        n = 120
        signal = rng.normal(size=n)
        labels = [str(int(v > 0)) for v in signal]
        X = np.column_stack([signal, rng.normal(scale=1e6, size=n)])
        model = KNeighborsClassifier(n_neighbors=5).fit(X, labels)
        assert accuracy_score(labels, model.predict(X)) > 0.8


class TestMetrics:
    def test_accuracy_edge_cases(self):
        assert accuracy_score([], []) == 0.0
        assert accuracy_score(["a"], ["a"]) == 1.0
        with pytest.raises(ValueError):
            accuracy_score(["a"], [])

    def test_confusion_matrix(self):
        matrix, labels = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert labels == ["a", "b"]
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])

    def test_split_fractions(self):
        X = np.arange(40).reshape(20, 2).astype(float)
        y = ["x"] * 20
        Xtr, ytr, Xte, yte = train_test_split(X, y, test_fraction=0.25, seed=0)
        assert len(Xtr) == 15 and len(Xte) == 5
        assert len(ytr) == 15 and len(yte) == 5

    def test_split_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((4, 1)), ["a"] * 4, test_fraction=1.5)
