"""Tests for the serving subsystem: registry, predictor, micro-batcher.

The load-bearing contract is round-trip identity (ISSUE acceptance
criterion): a model fitted to convergence, saved, and reloaded in a fresh
:class:`ModelRegistry` serves labels bit-identical to the fit's own
assignment on NumPy — convergence makes the final centroids a fixed
point of assignment, and the serving path uses the exact chunked kernel
with the same first-index argmin tie-break.  The ``serving-smoke`` CI job
asserts the same thing across a real process boundary.
"""

from __future__ import annotations

import json
import shutil
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.common.exceptions import (
    RegistryCorruptionError,
    RegistryError,
    RegistryVersionError,
    ValidationError,
)
from repro.core import KMeans
from repro.serve import (
    MODEL_KIND,
    REGISTRY_VERSION,
    SELECTOR_KIND,
    FailedRequest,
    MicroBatcher,
    ModelRegistry,
    Predictor,
)

GOLDEN_V1 = Path(__file__).resolve().parent / "golden" / "registry_v1"


def _fit(n=300, d=6, k=5, seed=0, algorithm="lloyd", backend="vectorized"):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    model = KMeans(k=k, algorithm=algorithm, backend=backend, seed=seed,
                   max_iter=500)
    result = model.fit(X)
    assert result.converged, "round-trip identity needs a converged fit"
    return X, result


class TestModelRegistry:
    def test_save_load_round_trip(self, tmp_path):
        X, result = _fit()
        registry = ModelRegistry(tmp_path / "reg")
        key = registry.save_model(result, dataset="toy", backend="vectorized",
                                  seed=0)
        entry = ModelRegistry(tmp_path / "reg").load(key)  # fresh instance
        assert entry.kind == MODEL_KIND
        assert entry.meta["algorithm"] == "lloyd"
        assert entry.meta["k"] == result.k
        assert entry.meta["dataset"] == "toy"
        assert entry.meta["counters"]["distance_computations"] > 0
        np.testing.assert_array_equal(entry.array("centroids"),
                                      result.centroids)
        np.testing.assert_array_equal(entry.array("labels"), result.labels)

    def test_content_key_is_idempotent_and_content_sensitive(self, tmp_path):
        _, result = _fit()
        registry = ModelRegistry(tmp_path / "reg")
        key1 = registry.save_model(result, dataset="toy", seed=0)
        key2 = registry.save_model(result, dataset="toy", seed=0)
        assert key1 == key2
        assert len(registry.list_entries()) == 1  # last-wins per key
        key3 = registry.save_model(result, dataset="other", seed=0)
        assert key3 != key1  # metadata participates in the hash

    def test_latest_and_meta_filters(self, tmp_path):
        _, lloyd = _fit(algorithm="lloyd")
        _, elkan = _fit(algorithm="elkan")
        registry = ModelRegistry(tmp_path / "reg")
        registry.save_model(lloyd, dataset="toy")
        latest_key = registry.save_model(elkan, dataset="toy")
        assert registry.latest().key == latest_key
        assert registry.latest(algorithm="lloyd").meta["algorithm"] == "lloyd"
        with pytest.raises(RegistryError):
            registry.latest(algorithm="nonexistent")

    def test_unknown_key_raises(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(RegistryError):
            registry.load("deadbeef00000000")

    def test_verify_detects_flipped_byte(self, tmp_path):
        _, result = _fit()
        registry = ModelRegistry(tmp_path / "reg")
        key = registry.save_model(result)
        assert registry.verify() == 2  # centroids + labels
        payload = registry.object_dir(key) / "centroids.npy"
        blob = bytearray(payload.read_bytes())
        blob[200] ^= 0x01  # a single flipped bit in the float payload
        payload.write_bytes(bytes(blob))
        with pytest.raises(RegistryCorruptionError) as excinfo:
            registry.verify(key)
        assert excinfo.value.key == key
        assert excinfo.value.artifact == "centroids"

    def test_verify_detects_missing_payload(self, tmp_path):
        _, result = _fit()
        registry = ModelRegistry(tmp_path / "reg")
        key = registry.save_model(result)
        (registry.object_dir(key) / "labels.npy").unlink()
        with pytest.raises(RegistryCorruptionError):
            registry.verify(key)

    def test_truncated_manifest_tail_is_quarantined(self, tmp_path):
        _, result = _fit()
        registry = ModelRegistry(tmp_path / "reg")
        key = registry.save_model(result)
        with registry.manifest_path.open("a") as handle:
            handle.write('{"registry_version": 2, "key": "tr')  # torn append
        with pytest.warns(RuntimeWarning, match="truncated"):
            entries = registry.list_entries()
        assert [e.key for e in entries] == [key]

    def test_selector_round_trip_and_tamper_detection(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")

        class Selector:
            model_name = "dt"
            feature_set = "leaf"

            def __reduce__(self):
                return (dict, ())  # pickles to a plain dict, deterministic

        key = registry.save_selector(Selector(), meta={"records": 7})
        entry = registry.load(key)
        assert entry.kind == SELECTOR_KIND
        assert entry.meta["records"] == 7
        assert entry.selector() == {}
        path = registry.object_dir(key) / "selector.pkl"
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(RegistryCorruptionError):
            entry.selector()


class TestRegistrySchemaEvolution:
    def test_golden_v1_artifact_loads_under_current_reader(self, tmp_path):
        root = tmp_path / "reg"
        shutil.copytree(GOLDEN_V1, root)
        registry = ModelRegistry(root)
        entries = registry.list_entries()
        assert len(entries) == 1
        entry = entries[0]
        # The reader presents only the v2 shape: nested meta, arrays spec.
        assert entry.record["registry_version"] == REGISTRY_VERSION
        assert entry.meta["algorithm"] == "lloyd"
        assert entry.meta["dataset"] == "toy"
        centroids = entry.array("centroids")
        assert centroids.shape == (3, 4)
        assert centroids[1, 0] == 10.0
        assert registry.verify(entry.key) == 1

    def test_tampered_v1_payload_detected(self, tmp_path):
        root = tmp_path / "reg"
        shutil.copytree(GOLDEN_V1, root)
        manifest = root / "manifest.jsonl"
        record = json.loads(manifest.read_text())
        blob = record["centroids"]
        # Flip one payload character to another base64 symbol.
        record["centroids"] = ("A" if blob[10] != "A" else "B").join(
            [blob[:10], blob[11:]]
        )
        manifest.write_text(json.dumps(record) + "\n")
        registry = ModelRegistry(root)
        with pytest.raises(RegistryCorruptionError):
            registry.verify()

    def test_newer_version_raises_classified_error(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.root.mkdir(parents=True)
        registry.manifest_path.write_text(json.dumps({
            "registry_version": REGISTRY_VERSION + 1,
            "key": "feedface00000000", "kind": "model", "meta": {},
            "arrays": {},
        }) + "\n")
        with pytest.raises(RegistryVersionError) as excinfo:
            registry.list_entries()
        assert excinfo.value.version == REGISTRY_VERSION + 1

    def test_malformed_version_raises_registry_error(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.root.mkdir(parents=True)
        registry.manifest_path.write_text(
            json.dumps({"registry_version": "two", "key": "x"}) + "\n"
        )
        with pytest.raises(RegistryError):
            registry.list_entries()


class TestPredictor:
    def test_round_trip_bit_identity(self, tmp_path):
        X, result = _fit()
        key = ModelRegistry(tmp_path / "reg").save_model(result)
        # A fresh registry + predictor — nothing shared with the fit but
        # the bytes on disk.
        predictor = Predictor(ModelRegistry(tmp_path / "reg"), key)
        served = predictor.predict(X)
        np.testing.assert_array_equal(served, result.labels)

    def test_round_trip_identity_reference_backend(self, tmp_path):
        X, result = _fit(algorithm="elkan", backend="reference")
        key = ModelRegistry(tmp_path / "reg").save_model(result)
        predictor = Predictor(ModelRegistry(tmp_path / "reg"), key)
        np.testing.assert_array_equal(predictor.predict(X), result.labels)

    def test_counters_charge_per_pair(self, tmp_path):
        X, result = _fit(n=120, k=4)
        key = ModelRegistry(tmp_path / "reg").save_model(result)
        predictor = Predictor(ModelRegistry(tmp_path / "reg"), key)
        predictor.predict(X[:50])
        assert predictor.counters.distance_computations == 50 * result.k
        stats = predictor.stats()
        assert stats["requests"] == 1
        assert stats["points"] == 50

    def test_defaults_to_latest_model(self, tmp_path):
        _, first = _fit(seed=1)
        _, second = _fit(seed=2)
        registry = ModelRegistry(tmp_path / "reg")
        registry.save_model(first)
        latest_key = registry.save_model(second)
        assert Predictor(registry).entry.key == latest_key

    def test_dimension_mismatch_raises(self, tmp_path):
        X, result = _fit(d=6)
        key = ModelRegistry(tmp_path / "reg").save_model(result)
        predictor = Predictor(ModelRegistry(tmp_path / "reg"), key)
        with pytest.raises(ValidationError):
            predictor.predict(np.zeros((3, 5)))

    def test_selector_entry_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        key = registry.save_selector({"not": "a model"})
        with pytest.raises(ValidationError):
            Predictor(registry, key)

    def test_predict_one(self, tmp_path):
        X, result = _fit()
        key = ModelRegistry(tmp_path / "reg").save_model(result)
        predictor = Predictor(ModelRegistry(tmp_path / "reg"), key)
        assert predictor.predict_one(X[7]) == int(result.labels[7])

    def test_warm_cache_is_read_only_view(self, tmp_path):
        _, result = _fit()
        key = ModelRegistry(tmp_path / "reg").save_model(result)
        predictor = Predictor(ModelRegistry(tmp_path / "reg"), key)
        with pytest.raises((ValueError, RuntimeError)):
            predictor.centroids[0, 0] = 99.0


def _make_predictor(tmp_path):
    X, result = _fit()
    key = ModelRegistry(tmp_path / "reg").save_model(result)
    return X, result, Predictor(ModelRegistry(tmp_path / "reg"), key)


class TestMicroBatcher:
    def test_concurrent_submits_coalesce_and_stay_correct(self, tmp_path):
        X, result, predictor = _make_predictor(tmp_path)
        outcomes = [None] * 40
        with MicroBatcher(predictor, max_batch=64, max_wait=0.01) as batcher:
            def client(i):
                outcomes[i] = batcher.submit(X[i]).result(timeout=10)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(40)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i, outcome in enumerate(outcomes):
            assert isinstance(outcome, np.ndarray)
            assert outcome[0] == result.labels[i]
        # Coalescing happened: far fewer kernel batches than requests.
        assert batcher.stats["requests"] == 40
        assert batcher.stats["batches"] < 40

    def test_multi_point_requests_split_correctly(self, tmp_path):
        X, result, predictor = _make_predictor(tmp_path)
        with MicroBatcher(predictor, max_batch=8, max_wait=0.001) as batcher:
            tickets = [batcher.submit(X[i * 10:(i + 1) * 10])
                       for i in range(5)]
            for i, ticket in enumerate(tickets):
                labels = ticket.result(timeout=10)
                np.testing.assert_array_equal(
                    labels, result.labels[i * 10:(i + 1) * 10]
                )

    def test_expired_deadline_degrades_to_failed_request(self, tmp_path):
        X, _, predictor = _make_predictor(tmp_path)
        # A long max_wait guarantees the deadline passes while queued.
        with MicroBatcher(predictor, max_batch=4, max_wait=0.3) as batcher:
            ticket = batcher.submit(X[0], deadline=1e-4)
            outcome = ticket.result(timeout=10)
        assert isinstance(outcome, FailedRequest)
        assert outcome.error_type == "DeadlineExceededError"
        assert outcome.status == "failed"
        assert batcher.stats["failed"] == 1

    def test_kernel_failure_degrades_batch_not_server(self, tmp_path):
        X, result, predictor = _make_predictor(tmp_path)
        original = predictor.predict
        calls = {"n": 0}

        def flaky(points, counters=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected kernel failure")
            return original(points, counters)

        predictor.predict = flaky
        with MicroBatcher(predictor, max_batch=64, max_wait=0.01) as batcher:
            first = batcher.submit(X[0]).result(timeout=10)
            second = batcher.submit(X[1]).result(timeout=10)
        assert isinstance(first, FailedRequest)
        assert first.error_type == "RuntimeError"
        assert "injected" in first.message
        # The worker survived and the next request was served normally.
        assert isinstance(second, np.ndarray)
        assert second[0] == result.labels[1]

    def test_submit_after_close_raises(self, tmp_path):
        X, _, predictor = _make_predictor(tmp_path)
        batcher = MicroBatcher(predictor)
        batcher.close()
        with pytest.raises(ValidationError):
            batcher.submit(X[0])

    def test_close_drains_pending_requests(self, tmp_path):
        X, result, predictor = _make_predictor(tmp_path)
        batcher = MicroBatcher(predictor, max_batch=16, max_wait=0.05)
        tickets = [batcher.submit(X[i]) for i in range(10)]
        batcher.close()
        for i, ticket in enumerate(tickets):
            outcome = ticket.result(timeout=1)
            assert isinstance(outcome, np.ndarray)
            assert outcome[0] == result.labels[i]

    def test_bad_arguments_rejected(self, tmp_path):
        X, _, predictor = _make_predictor(tmp_path)
        with pytest.raises(ValidationError):
            MicroBatcher(predictor, max_batch=0)
        with MicroBatcher(predictor) as batcher:
            with pytest.raises(ValidationError):
                batcher.submit(X[0], deadline=-1.0)
            with pytest.raises(ValidationError):
                batcher.submit(np.zeros((2, predictor.d + 1)))


class TestHarnessIntegration:
    def test_run_algorithm_save_model(self, tmp_path):
        from repro.eval.harness import run_algorithm

        rng = np.random.default_rng(3)
        X = rng.normal(size=(150, 5))
        record = run_algorithm(
            "lloyd", X, 4, repeats=2, max_iter=50, seed=0,
            backend="vectorized", save_model=tmp_path / "reg", dataset="toy",
        )
        key = record.extras["model_key"]
        registry = ModelRegistry(record.extras["model_registry"])
        entry = registry.load(key)
        assert entry.meta["dataset"] == "toy"
        assert entry.meta["seed"] == 0
        assert registry.verify(key) == 2

    def test_parallel_compare_saves_from_workers(self, tmp_path):
        from repro.eval.parallel import parallel_compare

        rng = np.random.default_rng(4)
        X = rng.normal(size=(120, 4))
        records = parallel_compare(
            ["lloyd", "hamerly"], X, 3, repeats=1, max_iter=40, seed=0,
            backend="vectorized", save_model=str(tmp_path / "reg"),
            dataset="toy",
        )
        registry = ModelRegistry(tmp_path / "reg")
        keys = {record.extras["model_key"] for record in records}
        assert len(keys) == 2
        stored = {entry.key for entry in registry.list_entries()}
        assert keys == stored
        assert registry.verify() == 4  # two models x (centroids + labels)
