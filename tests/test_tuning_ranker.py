"""Tests for the rank-aware pairwise selector (future-work extension)."""

import numpy as np
import pytest

from repro.common.exceptions import NotFittedError, ValidationError
from repro.tuning.models.ranker import PairwiseRanker
from repro.tuning.mrr import mean_reciprocal_rank


@pytest.fixture(scope="module")
def ranking_task():
    """Synthetic selection problem with a feature-dependent ranking.

    One feature decides the winner: x > 0 ranks (a, b, c); x < 0 ranks
    (c, b, a).  A rank-aware model must learn both the winner and the
    runner-up structure.
    """
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 3))
    rankings = [["a", "b", "c"] if row[0] > 0 else ["c", "b", "a"] for row in X]
    return X, rankings


class TestPairwiseRanker:
    def test_learns_winner(self, ranking_task):
        X, rankings = ranking_task
        model = PairwiseRanker(epochs=100, seed=0).fit(X, rankings)
        predictions = model.predict(X)
        truth = [ranking[0] for ranking in rankings]
        accuracy = np.mean([p == t for p, t in zip(predictions, truth)])
        assert accuracy > 0.9

    def test_learns_full_ranking(self, ranking_task):
        X, rankings = ranking_task
        model = PairwiseRanker(epochs=100, seed=0).fit(X, rankings)
        predicted_rankings = model.rank(X)
        exact = np.mean(
            [list(p) == list(t) for p, t in zip(predicted_rankings, rankings)]
        )
        assert exact > 0.8

    def test_high_mrr(self, ranking_task):
        X, rankings = ranking_task
        model = PairwiseRanker(epochs=100, seed=0).fit(X, rankings)
        mrr = mean_reciprocal_rank(rankings, model.predict(X))
        assert mrr > 0.9

    def test_partial_rankings_supported(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(60, 2))
        # Selective running yields partial rankings of varying length.
        rankings = [["a", "b"] if row[0] > 0 else ["b"] for row in X]
        model = PairwiseRanker(epochs=50, seed=0).fit(X, rankings)
        assert set(model.classes_) == {"a", "b"}
        assert model.predict(X[:1])[0] in {"a", "b"}

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            PairwiseRanker().predict(np.ones((1, 2)))

    def test_misaligned_inputs(self):
        with pytest.raises(ValidationError):
            PairwiseRanker().fit(np.ones((3, 2)), [["a"]])

    def test_scores_shape(self, ranking_task):
        X, rankings = ranking_task
        model = PairwiseRanker(epochs=10, seed=0).fit(X, rankings)
        assert model.decision_scores(X[:4]).shape == (4, 3)


class TestUTuneRankerBackend:
    def test_utune_accepts_ranker(self):
        from repro.datasets import load_dataset
        from repro.tuning import UTune, generate_ground_truth

        tasks = []
        for name in ["NYC-Taxi", "Covtype"]:
            X = load_dataset(name, n=300, seed=0)
            for k in [4, 10]:
                tasks.append((name, X, k))
        records = generate_ground_truth(tasks, selective=True, max_iter=4)
        tuner = UTune(model="ranker", epochs=60).fit(records)
        report = tuner.evaluate(records)
        assert report["bound_mrr"] > 0.3
        config = tuner.predict_config(load_dataset("NYC-Taxi", n=300, seed=5), 4)
        assert config.label
