"""Unit tests for the repo-contract static analyzer (``repro.analysis``).

Each rule must fire on a minimal synthetic offender, stay quiet on the
instrumented/clean counterpart, and respect ``# repro: ignore[...]``
suppressions — the acceptance contract of the linter itself.
"""

import json

import pytest

from repro.analysis import (
    ALL_RULE_IDS,
    analyze_paths,
    analyze_source,
    format_findings_json,
    format_findings_text,
    get_rules,
    load_baseline,
    write_baseline,
)
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.runner import AnalysisReport
from repro.analysis.suppressions import parse_suppressions

CORE_PATH = "src/repro/core/fake.py"  # inside the instrumented scope
OUTSIDE_PATH = "src/repro/eval/fake.py"  # outside it


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# R001 — uninstrumented-distance
# ----------------------------------------------------------------------


class TestR001:
    def test_linalg_norm_fires(self):
        src = (
            "import numpy as np\n"
            "def f(x, y):\n"
            "    return np.linalg.norm(x - y)\n"
        )
        findings = analyze_source(src, CORE_PATH)
        assert rule_ids(findings) == ["R001"]
        assert findings[0].line == 3
        assert "np.linalg.norm" in findings[0].snippet

    def test_import_alias_resolved(self):
        src = (
            "from numpy import linalg as la\n"
            "def f(d):\n"
            "    return la.norm(d)\n"
        )
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_scipy_spatial_fires(self):
        src = (
            "from scipy.spatial import distance\n"
            "def f(x, y):\n"
            "    return distance.euclidean(x, y)\n"
        )
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_matmul_inner_product_fires(self):
        src = (
            "def f(x, y):\n"
            "    diff = x - y\n"
            "    return (diff @ diff) ** 0.5\n"
        )
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_matmul_different_operands_clean(self):
        src = "def f(a, b):\n    return a @ b\n"
        assert analyze_source(src, CORE_PATH) == []

    def test_same_operand_einsum_fires(self):
        src = (
            "import numpy as np\n"
            "def f(diff):\n"
            "    return np.einsum('ij,ij->i', diff, diff)\n"
        )
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_other_einsum_clean(self):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.einsum('ij,jk->ik', a, b)\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_instrumented_kernel_clean(self):
        src = (
            "from repro.common.distance import euclidean\n"
            "def f(x, y, counters):\n"
            "    return euclidean(x, y, counters)\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_out_of_scope_path_ignored(self):
        src = "import numpy as np\nr = np.linalg.norm([1.0, 2.0])\n"
        assert analyze_source(src, OUTSIDE_PATH) == []

    # -- vectorized-backend idioms (ISSUE 3) ---------------------------

    def test_same_root_batched_matmul_fires(self):
        # The _rowwise_sq_norms idiom hand-rolled inside the core.
        src = (
            "import numpy as np\n"
            "def f(diff):\n"
            "    return np.matmul(diff[:, None, :], diff[:, :, None])[:, 0, 0]\n"
        )
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_plain_same_operand_matmul_fires(self):
        src = (
            "import numpy as np\n"
            "def f(diff):\n"
            "    return np.matmul(diff, diff)\n"
        )
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_matmul_distinct_roots_clean(self):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.matmul(a[:, None, :], b[:, :, None])\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_sq_diff_method_sum_fires(self):
        src = "def f(a, b):\n    return ((a - b) ** 2).sum(axis=1)\n"
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_sq_diff_np_sum_fires(self):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.sum((a - b) ** 2)\n"
        )
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_sq_sum_without_difference_clean(self):
        # A plain norm table (no subtraction) is not a distance.
        src = "def f(a):\n    return (a ** 2).sum(axis=1)\n"
        assert analyze_source(src, CORE_PATH) == []

    # -- frontier / scatter-add batching idioms (ISSUE 5) --------------

    def test_np_square_diff_sum_fires(self):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.square(a - b).sum(axis=-1)\n"
        )
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_np_sum_of_np_square_diff_fires(self):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.sum(np.square(a - b), axis=1)\n"
        )
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_same_operand_product_diff_sum_fires(self):
        src = "def f(a, b):\n    return ((a - b) * (a - b)).sum(axis=1)\n"
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_distinct_operand_product_sum_clean(self):
        src = "def f(a, b, w):\n    return ((a - b) * w).sum(axis=1)\n"
        assert analyze_source(src, CORE_PATH) == []

    def test_np_square_without_difference_clean(self):
        src = (
            "import numpy as np\n"
            "def f(a):\n"
            "    return np.square(a).sum(axis=1)\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_same_operand_np_dot_fires(self):
        src = (
            "import numpy as np\n"
            "def f(x, y):\n"
            "    diff = x - y\n"
            "    return np.dot(diff, diff)\n"
        )
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_distinct_operand_np_dot_clean(self):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.dot(a, b)\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_sq_diff_sum_suppressible(self):
        src = (
            "import numpy as np\n"
            "def f(a, b, counters):\n"
            "    counters.add_distances(1)\n"
            "    # repro: ignore[R001] — charged manually above\n"
            "    return np.sum((a - b) ** 2)\n"
        )
        assert analyze_source(src, CORE_PATH) == []


# ----------------------------------------------------------------------
# R002 — global-rng
# ----------------------------------------------------------------------


class TestR002:
    def test_global_numpy_rng_fires(self):
        src = "import numpy as np\nv = np.random.rand(3)\n"
        assert rule_ids(analyze_source(src, OUTSIDE_PATH)) == ["R002"]

    def test_stdlib_random_fires(self):
        src = "import random\nv = random.random()\n"
        assert rule_ids(analyze_source(src, OUTSIDE_PATH)) == ["R002"]

    def test_unseeded_default_rng_fires(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rule_ids(analyze_source(src, OUTSIDE_PATH)) == ["R002"]

    def test_seeded_default_rng_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert analyze_source(src, OUTSIDE_PATH) == []

    def test_rng_module_exempt(self):
        src = "import numpy as np\nv = np.random.rand(3)\n"
        assert analyze_source(src, "src/repro/common/rng.py") == []


# ----------------------------------------------------------------------
# R003 — counter-discipline
# ----------------------------------------------------------------------


class TestR003:
    OFFENDER = (
        "class A:\n"
        "    def f(self, i, counters):\n"
        "        return self.X[i]\n"
    )

    def test_uncharged_point_read_fires(self):
        findings = analyze_source(self.OFFENDER, CORE_PATH)
        assert rule_ids(findings) == ["R003"]
        assert "point_accesses" in findings[0].message

    def test_charged_point_read_clean(self):
        src = (
            "class A:\n"
            "    def f(self, i, counters):\n"
            "        counters.add_point_accesses(1)\n"
            "        return self.X[i]\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_uncharged_bound_read_fires(self):
        src = (
            "class A:\n"
            "    def f(self, i, counters):\n"
            "        return self._ub[i]\n"
        )
        findings = analyze_source(src, CORE_PATH)
        assert rule_ids(findings) == ["R003"]
        assert "bound_accesses" in findings[0].message

    def test_no_counters_param_clean(self):
        src = (
            "class A:\n"
            "    def f(self, i):\n"
            "        return self.X[i]\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    # -- vectorized-backend methods (ISSUE 3): self.counters + aliases --

    def test_self_counters_method_fires_on_uncharged_read(self):
        # Vectorized _assign methods take no counters parameter; touching
        # self.counters is what marks them as measured.
        src = (
            "class A:\n"
            "    def _assign(self, i):\n"
            "        self.counters.add_distances(1)\n"
            "        return self.X[i]\n"
        )
        findings = analyze_source(src, CORE_PATH)
        assert rule_ids(findings) == ["R003"]
        assert "point_accesses" in findings[0].message

    def test_self_counters_method_charged_clean(self):
        src = (
            "class A:\n"
            "    def _assign(self, i):\n"
            "        self.counters.add_point_accesses(1)\n"
            "        return self.X[i]\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_bound_read_through_local_alias_fires(self):
        # The hoist-to-local idiom of repro.core.vectorized.
        src = (
            "class A:\n"
            "    def _assign(self, active):\n"
            "        lb = self._lb\n"
            "        self.counters.add_distances(1)\n"
            "        return lb[active]\n"
        )
        findings = analyze_source(src, CORE_PATH)
        assert rule_ids(findings) == ["R003"]
        assert "bound_accesses" in findings[0].message

    def test_point_read_through_local_alias_charged_clean(self):
        src = (
            "class A:\n"
            "    def _assign(self, active):\n"
            "        X = self.X\n"
            "        self.counters.add_point_accesses(len(active))\n"
            "        return X[active]\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_unrelated_local_subscript_clean(self):
        src = (
            "class A:\n"
            "    def _assign(self, active):\n"
            "        self.counters.add_distances(1)\n"
            "        scratch = [1, 2, 3]\n"
            "        return scratch[0]\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_method_without_counters_use_stays_clean(self):
        src = (
            "class A:\n"
            "    def helper(self, i):\n"
            "        lb = self._lb\n"
            "        return lb[i]\n"
        )
        assert analyze_source(src, CORE_PATH) == []


# ----------------------------------------------------------------------
# R004 — float-equality
# ----------------------------------------------------------------------


class TestR004:
    def test_float_literal_equality_fires(self):
        src = "def f(x):\n    return x == 0.5\n"
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R004"]

    def test_float_call_inequality_fires(self):
        src = "def f(x, y):\n    return float(x) != y\n"
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R004"]

    def test_int_equality_clean(self):
        src = "def f(x):\n    return x == 0\n"
        assert analyze_source(src, CORE_PATH) == []

    def test_ordered_comparison_clean(self):
        src = "def f(x):\n    return x <= 0.5\n"
        assert analyze_source(src, CORE_PATH) == []


# ----------------------------------------------------------------------
# R005 — mutable-default-arg
# ----------------------------------------------------------------------


class TestR005:
    def test_list_default_fires(self):
        src = "def f(items=[]):\n    return items\n"
        findings = analyze_source(src, OUTSIDE_PATH)
        assert rule_ids(findings) == ["R005"]

    def test_dict_factory_default_fires(self):
        src = "def f(cfg=dict()):\n    return cfg\n"
        assert rule_ids(analyze_source(src, OUTSIDE_PATH)) == ["R005"]

    def test_none_default_clean(self):
        src = "def f(items=None):\n    return items or []\n"
        assert analyze_source(src, OUTSIDE_PATH) == []


# ----------------------------------------------------------------------
# R006 — no-swallowed-exception
# ----------------------------------------------------------------------


class TestR006:
    def test_bare_except_pass_fires(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except:\n"
            "        pass\n"
        )
        findings = analyze_source(src, OUTSIDE_PATH)
        assert rule_ids(findings) == ["R006"]
        assert "bare except" in findings[0].message

    def test_broad_except_ellipsis_fires(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except Exception:\n"
            "        ...\n"
        )
        findings = analyze_source(src, OUTSIDE_PATH)
        assert rule_ids(findings) == ["R006"]
        assert "broad except" in findings[0].message

    def test_broad_except_in_tuple_fires(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except (ValueError, Exception):\n"
            "        continue_marker = None\n"
            "        pass\n"
        )
        # A tuple containing Exception is broad, but the body assigns — no
        # swallow, so it's clean; pure pass bodies do fire.
        assert analyze_source(src, OUTSIDE_PATH) == []
        swallowed = src.replace("        continue_marker = None\n", "")
        assert rule_ids(analyze_source(swallowed, OUTSIDE_PATH)) == ["R006"]

    def test_narrow_except_clean(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert analyze_source(src, OUTSIDE_PATH) == []

    def test_handled_broad_except_clean(self):
        src = (
            "def f(log):\n"
            "    try:\n"
            "        risky()\n"
            "    except Exception as exc:\n"
            "        log.add(exc)\n"
        )
        assert analyze_source(src, OUTSIDE_PATH) == []

    def test_reraise_clean(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except Exception:\n"
            "        raise\n"
        )
        assert analyze_source(src, OUTSIDE_PATH) == []

    def test_suppression_comment_respected(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except Exception:  # repro: ignore[R006]\n"
            "        pass\n"
        )
        assert analyze_source(src, OUTSIDE_PATH) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


class TestSuppressions:
    OFFENDING_LINE = "    return np.linalg.norm(x - y)"

    def test_trailing_suppression(self):
        src = (
            "import numpy as np\n"
            "def f(x, y):\n"
            f"{self.OFFENDING_LINE}  # repro: ignore[R001]\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_banner_suppression_covers_next_code_line(self):
        src = (
            "import numpy as np\n"
            "def f(x, y):\n"
            "    # repro: ignore[R001] — deliberately uncounted\n"
            f"{self.OFFENDING_LINE}\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_bare_ignore_suppresses_all_rules(self):
        src = (
            "import numpy as np\n"
            "def f(x, y):\n"
            f"{self.OFFENDING_LINE}  # repro: ignore\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_wrong_rule_id_does_not_suppress(self):
        src = (
            "import numpy as np\n"
            "def f(x, y):\n"
            f"{self.OFFENDING_LINE}  # repro: ignore[R005]\n"
        )
        assert rule_ids(analyze_source(src, CORE_PATH)) == ["R001"]

    def test_multiple_rule_ids(self):
        src = (
            "import numpy as np\n"
            "def f(x, y):\n"
            f"{self.OFFENDING_LINE}  # repro: ignore[R001, R004]\n"
        )
        assert analyze_source(src, CORE_PATH) == []

    def test_parse_suppressions_map(self):
        src = "x = 1  # repro: ignore[R001]\ny = 2\n"
        supp = parse_suppressions(src)
        assert supp[1] == frozenset({"R001"})
        assert 2 not in supp


# ----------------------------------------------------------------------
# Baseline round-trip, registry, reporters
# ----------------------------------------------------------------------


def _finding(path="src/repro/core/a.py", rule="R001", snippet="x = bad()"):
    return Finding(path=path, line=3, col=5, rule_id=rule,
                   message="msg", snippet=snippet)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding(), _finding(), _finding(rule="R004")])
        baseline = load_baseline(path)
        assert len(baseline) == 3
        payload = json.loads(path.read_text())
        assert payload["version"] == 2
        counts = {(i["path"], i["rule"]): i.get("count", 1)
                  for i in payload["findings"]}
        assert counts[("src/repro/core/a.py", "R001")] == 2
        # v2 entries are keyed by content hash; the snippet rides along
        # for human review only.
        assert all(i["hash"] for i in payload["findings"])

    def test_missing_file_is_empty(self, tmp_path):
        assert len(load_baseline(tmp_path / "absent.json")) == 0

    def test_filter_absorbs_up_to_count(self):
        baseline = Baseline()
        baseline.entries[_finding().baseline_key()] = 1
        fresh, absorbed = baseline.filter([_finding(), _finding()])
        assert absorbed == 1
        assert len(fresh) == 1

    def test_line_number_insensitive(self):
        moved = Finding(path="src/repro/core/a.py", line=99, col=1,
                        rule_id="R001", message="msg", snippet="x = bad()")
        baseline = Baseline()
        baseline.entries[_finding().baseline_key()] = 1
        fresh, absorbed = baseline.filter([moved])
        assert absorbed == 1 and fresh == []


class TestRegistryAndReporters:
    def test_all_rules_registered(self):
        assert ALL_RULE_IDS == (
            "R001", "R002", "R003", "R004", "R005", "R006",
            "R007", "R008", "R009", "R010", "R011", "R012",
        )

    def test_get_rules_subset_and_unknown(self):
        assert [r.rule_id for r in get_rules(["r004"])] == ["R004"]
        with pytest.raises(KeyError):
            get_rules(["R999"])

    def test_text_reporter_mentions_findings(self):
        report = AnalysisReport(findings=[_finding()], files_scanned=1)
        text = format_findings_text(report)
        assert "src/repro/core/a.py:3:5: R001" in text
        assert "1 finding(s)" in text

    def test_json_reporter_is_valid_json(self):
        report = AnalysisReport(findings=[_finding()], files_scanned=1)
        payload = json.loads(format_findings_json(report))
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "R001"

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = analyze_paths([bad], root=tmp_path)
        assert report.parse_errors and report.ok is False
