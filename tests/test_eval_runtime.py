"""Unit tests for the fault-tolerant execution runtime.

The supervised pool must survive everything ``ProcessPoolExecutor`` cannot:
hung workers (killed at the deadline), crashed workers (pool keeps going),
transient failures (retried with deterministic backoff), and terminal
failures (degraded to structured ``FailedRun`` records).
"""

import time

import pytest

from repro.common.exceptions import (
    RunTimeoutError,
    TransientError,
    ValidationError,
    WorkerCrashError,
)
from repro.eval.runtime import (
    ExecutionPolicy,
    FailedRun,
    RunKey,
    is_failed_record,
    run_with_retries,
    supervised_call,
    supervised_map,
)

KEY = RunKey(algorithm="lloyd", dataset="toy", n=100, d=4, k=5, seed=0, max_iter=10)


def _keys(count):
    return [
        RunKey(algorithm=f"algo{i}", dataset="toy", n=10, d=2, k=2, seed=0, max_iter=3)
        for i in range(count)
    ]


# Worker functions must be module-level to pickle under spawn contexts.


def _double(item, attempt):
    return item * 2


def _fail_always(item, attempt):
    raise ValueError(f"boom on {item}")


def _fail_transiently_forever(item, attempt):
    raise TransientError("never recovers")


def _hang(item, attempt):
    while True:
        time.sleep(60)


def _exit_hard(item, attempt):
    import os

    os._exit(3)


class TestRunKey:
    def test_round_trips_through_dict(self):
        assert RunKey.from_record(KEY.as_dict()) == KEY

    def test_from_record_with_context_fields(self):
        record = {**KEY.as_dict(), "total_time": 1.0, "status": "ok"}
        assert RunKey.from_record(record) == KEY

    def test_missing_fields_give_none(self):
        assert RunKey.from_record({"algorithm": "lloyd"}) is None

    def test_str_is_human_readable(self):
        text = str(KEY)
        assert "lloyd" in text and "toy" in text and "k=5" in text


class TestExecutionPolicy:
    def test_rejects_bad_timeout(self):
        with pytest.raises(ValidationError):
            ExecutionPolicy(timeout=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValidationError):
            ExecutionPolicy(retries=-1)

    def test_backoff_grows_and_caps(self):
        policy = ExecutionPolicy(backoff_base=0.1, backoff_cap=0.4, jitter=0.0)
        delays = [policy.backoff_delay("k", a) for a in (1, 2, 3, 4, 5)]
        assert delays == [pytest.approx(0.1), pytest.approx(0.2),
                          pytest.approx(0.4), pytest.approx(0.4),
                          pytest.approx(0.4)]

    def test_jitter_is_deterministic(self):
        policy = ExecutionPolicy(backoff_base=0.1, jitter=0.5)
        assert policy.backoff_delay("key", 1) == policy.backoff_delay("key", 1)
        assert policy.backoff_delay("key", 1) != policy.backoff_delay("other", 1)


class TestFailedRun:
    def test_as_dict_carries_key_and_status(self):
        failed = FailedRun(key=KEY, error_type="ValueError", message="boom",
                           attempts=2, elapsed=0.5)
        data = failed.as_dict()
        assert data["status"] == "failed"
        assert data["algorithm"] == "lloyd"
        assert data["dataset"] == "toy"
        assert RunKey.from_record(data) == KEY

    def test_is_failed_record_discriminates(self):
        failed = FailedRun(key=KEY, error_type="E", message="m", attempts=1,
                           elapsed=0.0)
        assert is_failed_record(failed)
        assert is_failed_record(failed.as_dict())
        assert not is_failed_record({"algorithm": "lloyd"})
        assert not is_failed_record(object())

    def test_to_exception_maps_error_types(self):
        def make(error_type):
            return FailedRun(key=KEY, error_type=error_type, message="m",
                             attempts=1, elapsed=0.0).to_exception()

        assert isinstance(make("RunTimeoutError"), RunTimeoutError)
        assert isinstance(make("WorkerCrashError"), WorkerCrashError)


class TestSupervisedMap:
    def test_maps_in_order(self):
        results = supervised_map(_double, [1, 2, 3], _keys(3), max_workers=2)
        assert results == [2, 4, 6]

    def test_empty_input(self):
        assert supervised_map(_double, [], []) == []

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ValidationError):
            supervised_map(_double, [1], _keys(2))

    def test_terminal_error_degrades_to_failed_run(self):
        results = supervised_map(_fail_always, [7], _keys(1))
        (failed,) = results
        assert isinstance(failed, FailedRun)
        assert failed.error_type == "ValueError"
        assert "boom on 7" in failed.message
        assert failed.attempts == 1

    def test_transient_exhausts_retries(self):
        policy = ExecutionPolicy(retries=2, backoff_base=0.001)
        (failed,) = supervised_map(
            _fail_transiently_forever, [0], _keys(1), policy=policy
        )
        assert isinstance(failed, FailedRun)
        assert failed.error_type == "TransientError"
        assert failed.attempts == 3  # 1 initial + 2 retries

    def test_hang_is_killed_at_deadline(self):
        policy = ExecutionPolicy(timeout=0.5)
        start = time.monotonic()
        (failed,) = supervised_map(_hang, [0], _keys(1), policy=policy)
        elapsed = time.monotonic() - start
        assert isinstance(failed, FailedRun)
        assert failed.error_type == "RunTimeoutError"
        assert elapsed < 10.0  # killed, not waited out

    def test_killed_worker_does_not_break_pool(self):
        keys = _keys(2)
        results = supervised_map(
            _exit_hard, [0], [keys[0]],
        ) + supervised_map(_double, [5], [keys[1]])
        assert isinstance(results[0], FailedRun)
        assert results[0].error_type == "WorkerCrashError"
        assert results[1] == 10

    def test_concurrent_batch_preserves_input_order(self):
        results = supervised_map(_double, [1, 2, 3, 4], _keys(4), max_workers=4)
        assert results == [2, 4, 6, 8]


class TestSupervisedCall:
    def test_returns_value(self):
        assert supervised_call(_double, 21, KEY) == 42

    def test_raises_timeout(self):
        with pytest.raises(RunTimeoutError):
            supervised_call(_hang, 0, KEY, policy=ExecutionPolicy(timeout=0.5))

    def test_raises_crash(self):
        with pytest.raises(WorkerCrashError):
            supervised_call(_exit_hard, 0, KEY)


class TestRunWithRetries:
    def test_retries_transient_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("not yet")
            return "done"

        slept = []
        result = run_with_retries(
            flaky, key="k", policy=ExecutionPolicy(retries=3, backoff_base=0.2),
            sleep=slept.append,
        )
        assert result == "done"
        assert len(calls) == 3
        assert len(slept) == 2
        assert slept[1] > slept[0]  # exponential growth

    def test_non_transient_propagates_immediately(self):
        def broken():
            raise ValueError("no retry for you")

        with pytest.raises(ValueError):
            run_with_retries(broken, policy=ExecutionPolicy(retries=5),
                             sleep=lambda _: None)

    def test_transient_budget_exhausted(self):
        def always():
            raise TransientError("forever")

        with pytest.raises(TransientError):
            run_with_retries(always, policy=ExecutionPolicy(retries=1),
                             sleep=lambda _: None)


def _sleep_quarter(item, attempt):
    time.sleep(0.25)
    return item


def _return_none(item, attempt):
    return None


class TestMaxTotalTime:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValidationError):
            ExecutionPolicy(max_total_time=0.0)
        with pytest.raises(ValidationError):
            ExecutionPolicy(max_total_time=-1.0)

    def test_batch_deadline_fails_unfinished_items(self):
        # One worker at a time, each sleeping 0.25s, a 0.4s batch budget:
        # the first item lands, later ones must fail with RunTimeoutError —
        # and the policy guarantees a fully-settled list either way.
        policy = ExecutionPolicy(max_total_time=0.4)
        results = supervised_map(
            _sleep_quarter, [1, 2, 3, 4], _keys(4), policy=policy, max_workers=1
        )
        assert len(results) == 4
        failed = [r for r in results if isinstance(r, FailedRun)]
        assert failed, "batch budget must expire before 4 x 0.25s on one worker"
        assert all(f.error_type == "RunTimeoutError" for f in failed)
        assert all("max_total_time" in f.message for f in failed)
        ok = [r for r in results if not isinstance(r, FailedRun)]
        assert ok, "first item should finish within the budget"

    def test_generous_budget_changes_nothing(self):
        policy = ExecutionPolicy(max_total_time=120.0)
        assert supervised_map(_double, [1, 2, 3], _keys(3), policy=policy) == [2, 4, 6]

    def test_no_retry_grant_past_deadline(self):
        # A transient failure whose backoff would land beyond the batch
        # deadline is not retried: the item fails instead of overshooting.
        policy = ExecutionPolicy(
            retries=5, backoff_base=10.0, max_total_time=1.0
        )
        (failed,) = supervised_map(
            _fail_transiently_forever, [0], _keys(1), policy=policy
        )
        assert isinstance(failed, FailedRun)
        assert failed.error_type == "TransientError"
        assert failed.attempts == 1


class TestNoNonePlaceholders:
    def test_worker_returning_none_is_a_result(self):
        # None is a legitimate worker result, not an unfinished marker.
        results = supervised_map(_return_none, [1], _keys(1))
        assert results == [None]

    def test_supervisor_abort_converts_pending_slots(self, monkeypatch):
        # Kill the supervisor loop itself mid-batch: the finally path must
        # settle every unfinished slot as SupervisorAborted, never leave a
        # placeholder.  The list never reaches the caller (the exception
        # propagates), so observe the conversion via the FailedRun records
        # the finally path constructs.
        import repro.eval.runtime as runtime

        created = []
        real_failed_run = runtime.FailedRun

        class RecordingFailedRun(real_failed_run):
            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                created.append(self)

        class ExplodingContext:
            def __init__(self, ctx):
                self._ctx = ctx
                self._calls = 0

            def Pipe(self, *args, **kwargs):
                self._calls += 1
                if self._calls > 1:
                    raise KeyboardInterrupt("supervisor dies mid-dispatch")
                return self._ctx.Pipe(*args, **kwargs)

            def __getattr__(self, name):
                return getattr(self._ctx, name)

        real_default = runtime._default_context
        monkeypatch.setattr(runtime, "FailedRun", RecordingFailedRun)
        monkeypatch.setattr(
            runtime, "_default_context",
            lambda: ExplodingContext(real_default()),
        )
        with pytest.raises(KeyboardInterrupt):
            runtime.supervised_map(
                _sleep_quarter, [1, 2, 3], _keys(3), max_workers=1
            )
        aborted = [f for f in created if f.error_type == "SupervisorAborted"]
        assert len(aborted) == 2  # items 2 and 3 never got to run
        assert all("supervisor aborted" in f.message for f in aborted)
