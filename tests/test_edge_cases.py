"""Edge-case and regression tests across subsystems."""

import numpy as np
import pytest

from repro.core import make_algorithm
from repro.core.heap import HeapKMeans
from repro.core.minibatch import MiniBatchKMeans
from repro.datasets import make_anisotropic, make_blobs
from repro.eval.logdb import EvaluationLog


class TestDegenerateK:
    def test_heap_k_one(self):
        X, _ = make_blobs(100, 3, 2, seed=0)
        result = HeapKMeans().fit(X, 1, max_iter=5, seed=0)
        assert (result.labels == 0).all()
        np.testing.assert_allclose(result.centroids[0], X.mean(axis=0), atol=1e-8)

    @pytest.mark.parametrize("name", ["exponion", "annular", "vector", "pami20"])
    def test_norm_based_methods_k_one(self, name):
        X, _ = make_blobs(80, 3, 2, seed=1)
        result = make_algorithm(name).fit(X, 1, max_iter=5, seed=0)
        np.testing.assert_allclose(result.centroids[0], X.mean(axis=0), atol=1e-8)

    def test_k_equals_n(self):
        X = np.random.default_rng(0).normal(size=(12, 2))
        result = make_algorithm("lloyd").fit(X, 12, max_iter=10, seed=0)
        # Every point its own cluster: SSE must be (near) zero.
        assert result.sse < 1e-12


class TestSinglePointAndFeature:
    @pytest.mark.parametrize("name", ["lloyd", "hamerly", "yinyang", "unik", "index"])
    def test_one_dimensional_data(self, name):
        X = np.sort(np.random.default_rng(0).normal(size=(150, 1)), axis=0)
        result = make_algorithm(name).fit(X, 4, max_iter=40, seed=0)
        # 1-d clusters are intervals: labels sorted by position must be
        # piecewise constant.
        changes = np.count_nonzero(np.diff(result.labels[np.argsort(X[:, 0])]))
        assert changes == 3

    def test_two_points(self):
        X = np.array([[0.0, 0.0], [10.0, 10.0]])
        result = make_algorithm("unik").fit(X, 2, max_iter=5, seed=0)
        assert result.sse < 1e-12


class TestMiniBatchEdges:
    def test_batch_larger_than_n(self):
        X, _ = make_blobs(50, 3, 3, seed=0)
        result = MiniBatchKMeans(batch_size=10_000).fit(X, 3, max_iter=5, seed=0)
        assert result.labels.shape == (50,)

    def test_max_iter_one(self):
        X, _ = make_blobs(80, 3, 3, seed=0)
        result = MiniBatchKMeans().fit(X, 3, max_iter=1, seed=0)
        assert result.n_iter == 1


class TestAnisotropicGenerator:
    def test_shape_and_determinism(self):
        X1, y1 = make_anisotropic(300, 5, 4, seed=3)
        X2, y2 = make_anisotropic(300, 5, 4, seed=3)
        assert X1.shape == (300, 5)
        np.testing.assert_array_equal(X1, X2)
        np.testing.assert_array_equal(y1, y2)

    def test_elongation_increases_spread_anisotropy(self):
        # Within one component, variance along the stretched direction must
        # dominate variance across it.
        X, y = make_anisotropic(2000, 4, 1, anisotropy=8.0, seed=1)
        centered = X - X.mean(axis=0)
        cov = centered.T @ centered / len(X)
        eigvals = np.sort(np.linalg.eigvalsh(cov))
        assert eigvals[-1] > 10 * eigvals[0]

    def test_isotropic_when_anisotropy_one(self):
        X, _ = make_anisotropic(2000, 3, 1, anisotropy=1.0, seed=2)
        centered = X - X.mean(axis=0)
        cov = centered.T @ centered / len(X)
        eigvals = np.sort(np.linalg.eigvalsh(cov))
        assert eigvals[-1] < 1.5 * eigvals[0]

    def test_algorithms_exact_on_anisotropic_data(self, centroids_factory):
        from repro.core.lloyd import LloydKMeans

        X, _ = make_anisotropic(400, 4, 5, seed=4)
        C0 = centroids_factory(X, 6)
        base = LloydKMeans().fit(X, 6, initial_centroids=C0, max_iter=40)
        for name in ["elkan", "yinyang", "unik", "index"]:
            result = make_algorithm(name).fit(
                X, 6, initial_centroids=C0, max_iter=40
            )
            np.testing.assert_array_equal(result.labels, base.labels)


class TestHarnessLogIntegration:
    def test_records_flow_into_log(self, tmp_path):
        from repro.eval import compare_algorithms

        X, _ = make_blobs(200, 3, 4, seed=0)
        records = compare_algorithms(["lloyd", "hamerly"], X, 4,
                                     repeats=1, max_iter=4)
        log = EvaluationLog(tmp_path / "log.jsonl")
        log.add_many(records, dataset="blobs", seed=0)
        assert log.best("total_time")["algorithm"] in ("lloyd", "hamerly")
        # Reload and aggregate.
        again = EvaluationLog(tmp_path / "log.jsonl")
        assert again.mean("n", dataset="blobs") == 200


class TestRecordSse:
    def test_sse_recorded_and_monotone(self):
        X, _ = make_blobs(300, 4, 5, seed=0)
        result = make_algorithm("lloyd").fit(
            X, 5, max_iter=20, seed=0, record_sse=True
        )
        sses = [stats.sse for stats in result.iteration_stats]
        assert all(s is not None for s in sses)
        assert all(b <= a + 1e-9 for a, b in zip(sses, sses[1:]))

    def test_sse_none_by_default(self):
        X, _ = make_blobs(100, 3, 3, seed=0)
        result = make_algorithm("lloyd").fit(X, 3, max_iter=3, seed=0)
        assert result.iteration_stats[0].sse is None
