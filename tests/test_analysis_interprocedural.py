"""Fixture-package tests for the interprocedural rules R007–R012.

Each fixture is a tiny source tree written to ``tmp_path`` in the repo's
``src/repro/...`` layout (the rules scope by path), run through the real
:func:`repro.analysis.analyze_paths` with just the rule under test active
— one positive fixture that must fire and one negative that must not.
"""

import textwrap

from repro.analysis import analyze_paths, get_rules
from repro.cli import main


def run_fixture(tmp_path, files, rule_ids):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return analyze_paths(
        [tmp_path / "src"], root=tmp_path, rules=get_rules(rule_ids)
    )


# ----------------------------------------------------------------------
# R007 — parallel-safety
# ----------------------------------------------------------------------


class TestParallelSafety:
    def test_transitive_global_mutation_flagged(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/eval/work.py": """\
                TOTALS = {}

                def mutate():
                    TOTALS["x"] = 1

                def worker(item):
                    mutate()
                    return item

                def run(items):
                    return supervised_map(worker, items)
                """,
        }, ["R007"])
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule_id == "R007"
        assert "'mutate'" in finding.message
        assert "chain:" in finding.message
        # Reported at the offender's definition, with the dispatch site named.
        assert finding.line == 3
        assert "work.py:11" in finding.message

    def test_lambda_and_nested_dispatch_flagged(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/eval/work.py": """\
                def run(items):
                    def inner(x):
                        return x
                    supervised_map(lambda x: x, items)
                    return supervised_map(inner, items)
                """,
        }, ["R007"])
        messages = [f.message for f in report.findings]
        assert any("lambda" in m for m in messages)
        assert any("unpicklable closure" in m for m in messages)

    def test_process_target_checked(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/eval/work.py": """\
                STATE = []

                def child():
                    STATE.append(1)

                def launch(ctx):
                    proc = ctx.Process(target=child)
                    proc.start()
                """,
        }, ["R007"])
        assert len(report.findings) == 1
        assert "'child'" in report.findings[0].message

    def test_thread_target_checked(self, tmp_path):
        # The serving micro-batcher dispatches its worker via
        # Thread(target=...); thread targets share memory, so a
        # module-global mutation races exactly like a pool kernel's.
        report = run_fixture(tmp_path, {
            "src/repro/serve/work.py": """\
                from threading import Thread

                PENDING = []

                def drain():
                    PENDING.clear()

                def start():
                    worker = Thread(target=drain, daemon=True)
                    worker.start()
                """,
        }, ["R007"])
        assert len(report.findings) == 1
        assert "'drain'" in report.findings[0].message

    def test_instance_state_thread_target_passes(self, tmp_path):
        # All mutable state on the instance handed to the worker (the
        # MicroBatcher idiom) — nothing module-global, nothing to flag.
        report = run_fixture(tmp_path, {
            "src/repro/serve/work.py": """\
                from threading import Thread

                def drain(batcher):
                    batcher.queue.clear()

                class Batcher:
                    def __init__(self):
                        self.queue = []
                        self.worker = Thread(target=drain, args=(self,))
                """,
        }, ["R007"])
        assert report.findings == []

    def test_clean_worker_passes(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/eval/work.py": """\
                def helper(item):
                    return item * 2

                def worker(item):
                    local = {}
                    local["x"] = helper(item)
                    return local

                def run(items):
                    return supervised_map(worker, items)
                """,
        }, ["R007"])
        assert report.findings == []

    def test_shard_kernel_registry_entries_checked(self, tmp_path):
        # SHARD_KERNELS values are dispatched by name *inside* the worker,
        # so no call site ever names them — the registry literal itself is
        # the dispatch surface and every entry gets the reachability walk.
        report = run_fixture(tmp_path, {
            "src/repro/exec/work.py": """\
                CACHE = {}

                def dirty_kernel(payload, counters):
                    CACHE["hit"] = payload
                    return {}

                def clean_kernel(payload, counters):
                    return {"labels": payload}

                SHARD_KERNELS = {
                    "dirty": dirty_kernel,
                    "clean": clean_kernel,
                }
                """,
        }, ["R007"])
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert "'dirty_kernel'" in finding.message
        assert "pool-kernel registry" in finding.message

    def test_shard_kernel_registry_lambda_flagged(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/exec/work.py": """\
                SHARD_KERNELS = {
                    "bad": lambda payload, counters: {},
                }
                """,
        }, ["R007"])
        assert len(report.findings) == 1
        assert "lambda" in report.findings[0].message

    def test_clean_shard_kernel_registry_passes(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/exec/work.py": """\
                def kernel(payload, counters):
                    return {"labels": payload}

                SHARD_KERNELS = {"k": kernel}
                """,
        }, ["R007"])
        assert report.findings == []


# ----------------------------------------------------------------------
# R008 — backend-purity
# ----------------------------------------------------------------------


_R008_BAD = """\
    import numpy as np

    BACKEND_ROUTED = True

    def raw_norm(a, b):
        return np.linalg.norm(a - b, axis=1)

    def routed(a, b):
        return raw_norm(a, b)
    """


class TestBackendPurity:
    def test_direct_and_inherited_flagged(self, tmp_path):
        report = run_fixture(
            tmp_path, {"src/repro/core/vec.py": _R008_BAD}, ["R008"]
        )
        assert len(report.findings) == 2
        by_line = {f.line: f.message for f in report.findings}
        # Direct offense at the arithmetic, inherited one at the def line.
        assert 6 in by_line and "backend-routed module" in by_line[6]
        assert 8 in by_line and "raw_norm" in by_line[8]
        assert "vec.py:6" in by_line[8]

    def test_undeclared_module_not_checked(self, tmp_path):
        undeclared = _R008_BAD.replace("BACKEND_ROUTED = True", "")
        report = run_fixture(
            tmp_path, {"src/repro/core/vec.py": undeclared}, ["R008"]
        )
        assert report.findings == []

    def test_justified_suppression_clears_effect(self, tmp_path):
        suppressed = _R008_BAD.replace(
            "return np.linalg.norm(a - b, axis=1)",
            "return np.linalg.norm(a - b, axis=1)  # repro: ignore[R001, R008]",
        )
        report = run_fixture(
            tmp_path, {"src/repro/core/vec.py": suppressed}, ["R008"]
        )
        # The suppressed line contributes no uncounted-distance effect, so
        # the caller inherits nothing either.
        assert report.findings == []


# ----------------------------------------------------------------------
# R009 — rng-provenance
# ----------------------------------------------------------------------


class TestRngProvenance:
    def test_hardcoded_seed_flagged(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/tuning/sel.py": """\
                from repro.common.rng import ensure_rng

                def pick():
                    rng = ensure_rng(42)
                    return rng
                """,
        }, ["R009"])
        assert len(report.findings) == 1
        assert "hard-codes the seed" in report.findings[0].message

    def test_acquired_from_nothing_flagged(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/tuning/sel.py": """\
                from repro.common.rng import ensure_rng

                def pick():
                    rng = ensure_rng()
                    return rng
                """,
        }, ["R009"])
        assert len(report.findings) == 1
        assert "from nothing" in report.findings[0].message

    def test_module_level_generator_draw_flagged(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/tuning/sel.py": """\
                _SHARED_RNG = object()

                def draw(n):
                    return _SHARED_RNG.integers(n)
                """,
        }, ["R009"])
        assert len(report.findings) == 1
        assert "_SHARED_RNG" in report.findings[0].message

    def test_parameter_derived_rng_passes(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/tuning/sel.py": """\
                from repro.common.rng import ensure_rng, spawn_rng

                def pick(seed, k):
                    rng = ensure_rng(seed)
                    child_rng = spawn_rng(rng)
                    return [child_rng.integers(10) for _ in range(k)]

                class Model:
                    def sample(self, n):
                        rng = ensure_rng(self.seed)
                        return rng.integers(n)
                """,
        }, ["R009"])
        assert report.findings == []


# ----------------------------------------------------------------------
# R010 — transitive counter discipline
# ----------------------------------------------------------------------


_R010_BAD = """\
    class Algo:
        def __init__(self, X, counters):
            self.X = X
            self.counters = counters

        def assign(self, counters):
            return self._gather()

        def _gather(self):
            return self.X[0]
    """


class TestTransitiveCounterDiscipline:
    def test_uncharged_helper_read_flagged(self, tmp_path):
        report = run_fixture(
            tmp_path, {"src/repro/core/algo.py": _R010_BAD}, ["R010"]
        )
        assert len(report.findings) == 1
        finding = report.findings[0]
        # Lands on the counter-accepting function's def, naming the helper.
        assert finding.line == 6
        assert "_gather" in finding.message
        assert "algo.py:10" in finding.message

    def test_charging_helper_passes(self, tmp_path):
        charged = _R010_BAD.replace(
            "            return self.X[0]",
            "            self.counters.add_point_accesses(1)\n"
            "            return self.X[0]",
        )
        report = run_fixture(
            tmp_path, {"src/repro/core/algo.py": charged}, ["R010"]
        )
        assert report.findings == []

    def test_suppressed_read_passes(self, tmp_path):
        suppressed = _R010_BAD.replace(
            "return self.X[0]",
            "return self.X[0]  # repro: ignore[R010] -- build-time gather",
        )
        report = run_fixture(
            tmp_path, {"src/repro/core/algo.py": suppressed}, ["R010"]
        )
        assert report.findings == []

    def test_outside_instrumented_scope_ignored(self, tmp_path):
        report = run_fixture(
            tmp_path, {"src/repro/tuning/algo.py": _R010_BAD}, ["R010"]
        )
        assert report.findings == []


# ----------------------------------------------------------------------
# R011 — accumulation-order stability
# ----------------------------------------------------------------------


_R011_BAD = """\
    def accumulate_cluster_sums(X, labels, k):
        return X

    def combine(parts):
        total = 0.0
        for value in set(parts):
            total += value
        return accumulate_cluster_sums(total, None, 1)
    """


class TestAccumulationOrder:
    def test_set_loop_on_merge_path_flagged(self, tmp_path):
        report = run_fixture(
            tmp_path, {"src/repro/core/shard.py": _R011_BAD}, ["R011"]
        )
        assert len(report.findings) == 1
        assert "hash order" in report.findings[0].message
        assert "'combine'" in report.findings[0].message

    def test_sum_over_set_comprehension_flagged(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/core/shard.py": """\
                def merge_partials(parts):
                    return sum(p * 2 for p in set(parts))
                """,
        }, ["R011"])
        assert len(report.findings) == 1
        assert "comprehension" in report.findings[0].message

    def test_sorted_iteration_passes(self, tmp_path):
        ordered = _R011_BAD.replace("set(parts)", "sorted(set(parts))")
        report = run_fixture(
            tmp_path, {"src/repro/core/shard.py": ordered}, ["R011"]
        )
        assert report.findings == []

    def test_off_merge_path_not_flagged(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/core/shard.py": """\
                def accumulate_cluster_sums(X, labels, k):
                    return X

                def unrelated(parts):
                    total = 0.0
                    for value in set(parts):
                        total += value
                    return total
                """,
        }, ["R011"])
        assert report.findings == []


# ----------------------------------------------------------------------
# Suppression audit / --strict-suppressions (satellite 1)
# ----------------------------------------------------------------------


class TestStrictSuppressions:
    def _write_stale(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1  # repro: ignore[R004]\n")
        return target

    def test_unused_suppression_reported(self, tmp_path):
        self._write_stale(tmp_path)
        report = analyze_paths([tmp_path], root=tmp_path)
        assert report.ok  # no findings ...
        assert not report.strict_ok()  # ... but a stale suppression
        assert len(report.unused_suppressions) == 1
        unused = report.unused_suppressions[0]
        assert unused.rule_ids == ("R004",)
        assert "unused suppression" in unused.format()

    def test_cli_exits_nonzero_only_with_flag(self, tmp_path, capsys):
        self._write_stale(tmp_path)
        argv = ["lint", str(tmp_path), "--no-baseline"]
        assert main(argv) == 0
        assert main(argv + ["--strict-suppressions"]) == 1
        assert "unused suppression" in capsys.readouterr().out

    def test_used_suppression_not_reported(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core" / "kern.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import numpy as np\n"
            "def d(a, b):\n"
            "    return np.linalg.norm(a - b)  # repro: ignore[R001]\n"
        )
        report = analyze_paths([tmp_path / "src"], root=tmp_path)
        assert report.findings == []
        assert report.suppressed == 1
        assert report.unused_suppressions == []

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        target = tmp_path / "doc.py"
        target.write_text(
            '"""Use ``# repro: ignore[R001]`` to silence a finding."""\n'
            "x = 1\n"
        )
        report = analyze_paths([tmp_path], root=tmp_path)
        assert report.unused_suppressions == []


# ----------------------------------------------------------------------
# R007 — POOL_HANDLERS registry entries are dispatch roots
# ----------------------------------------------------------------------


class TestPoolHandlerRegistry:
    def test_handler_with_global_mutation_flagged(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/exec/handlers.py": """\
                SEEN = []

                def note(message):
                    SEEN.append(message)

                def run_handler(state, message):
                    note(message)
                    return {"ok": True}

                POOL_HANDLERS = {"run": run_handler}
                """,
        }, ["R007"])
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert "'note'" in finding.message
        assert "pool-kernel registry" in finding.message

    def test_state_dict_handlers_pass(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/exec/handlers.py": """\
                def attach_handler(state, message):
                    state["arrays"] = dict(message["specs"])
                    return {"attached": len(state["arrays"])}

                def run_handler(state, message):
                    return {"shard": message["rank"]}

                POOL_HANDLERS = {
                    "attach": attach_handler,
                    "run": run_handler,
                }
                """,
        }, ["R007"])
        assert report.findings == []


# ----------------------------------------------------------------------
# R012 — shm-name-provenance
# ----------------------------------------------------------------------


class TestShmNameProvenance:
    def test_uuid_named_segment_flagged(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/exec/plane.py": """\
                import uuid
                from multiprocessing.shared_memory import SharedMemory

                def publish(nbytes):
                    name = uuid.uuid4().hex
                    return SharedMemory(name=name, create=True, size=nbytes)
                """,
        }, ["R012"])
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule_id == "R012"
        assert "SharedMemory(create=True)" in finding.message
        assert "entropy-tainted" in finding.message

    def test_time_derived_fit_token_flagged(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/exec/plane.py": """\
                import time
                from repro.exec.shm import segment_name

                def mint(pid):
                    return segment_name(str(time.time()), "x", pid=pid, sequence=0)
                """,
        }, ["R012"])
        assert len(report.findings) == 1
        assert "time.time()" in report.findings[0].message
        assert "fit key" in report.findings[0].message

    def test_rng_draw_in_name_flagged(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/exec/plane.py": """\
                from repro.exec.shm import segment_name

                def mint(rng, pid):
                    suffix = rng.integers(1 << 32)
                    return segment_name(f"fit{suffix}", "x", pid=pid, sequence=0)
                """,
        }, ["R012"])
        assert len(report.findings) == 1
        assert "'suffix'" in report.findings[0].message

    def test_fit_key_derived_names_pass(self, tmp_path):
        report = run_fixture(tmp_path, {
            "src/repro/exec/plane.py": """\
                from multiprocessing.shared_memory import SharedMemory
                from repro.exec.shm import segment_name

                def publish(fit_token, pid, sequence, nbytes):
                    name = segment_name(fit_token, "x", pid=pid, sequence=sequence)
                    return SharedMemory(name=name, create=True, size=nbytes)

                def attach(spec):
                    return SharedMemory(name=spec.name)
                """,
        }, ["R012"])
        assert report.findings == []

    def test_real_data_plane_is_clean(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        report = analyze_paths(
            [root / "src" / "repro" / "exec"], root=root,
            rules=get_rules(["R012"]),
        )
        assert report.findings == []
