"""Tests for configuration-knob discovery (Section A.5 extension)."""

import pytest

from repro.core.knobs import KnobConfig
from repro.datasets import make_blobs
from repro.tuning import enumerate_configurations, exhaustive_search, random_search


@pytest.fixture(scope="module")
def task():
    X, _ = make_blobs(400, 4, 5, seed=71)
    return X, 6


class TestEnumeration:
    def test_no_duplicates(self):
        configs = enumerate_configurations()
        assert len(configs) == len(set(configs))

    def test_pure_index_deduped_across_bounds(self):
        configs = enumerate_configurations(capacities=(30,))
        pure = [config for config in configs if config.index == "pure"]
        assert len(pure) == 1

    def test_block_filter_only_in_unik_traversals(self):
        for config in enumerate_configurations():
            if config.block_filter:
                assert config.index in ("single", "multiple", "adaptive")

    def test_capacity_expansion(self):
        base = len(enumerate_configurations(capacities=(30,)))
        wide = len(enumerate_configurations(capacities=(10, 30)))
        assert wide > base


class TestExhaustiveSearch:
    def test_sorted_by_metric(self, task):
        X, k = task
        configs = [
            KnobConfig(bound="hamerly"),
            KnobConfig(bound="yinyang"),
            KnobConfig(index="pure"),
        ]
        results = exhaustive_search(X, k, configs, max_iter=4)
        values = [result.metric_value for result in results]
        assert values == sorted(values)
        assert len(results) == 3

    def test_result_serializable(self, task):
        import json

        X, k = task
        results = exhaustive_search(
            X, k, [KnobConfig(bound="hamerly")], max_iter=3
        )
        json.dumps(results[0].as_dict())


class TestRandomSearch:
    def test_budget_respected(self, task):
        X, k = task
        results = random_search(X, k, budget=4, max_iter=3, seed=0)
        assert len(results) == 4

    def test_deterministic_sampling(self, task):
        X, k = task
        a = random_search(X, k, budget=3, max_iter=3, seed=5)
        b = random_search(X, k, budget=3, max_iter=3, seed=5)
        assert [r.config for r in a] == [r.config for r in b]

    def test_budget_capped_at_space(self, task):
        X, k = task
        results = random_search(
            X, k, budget=10_000, max_iter=2, seed=0, capacities=(30,)
        )
        assert len(results) == len(enumerate_configurations(capacities=(30,)))

    def test_discovers_competitive_config(self, task):
        # The best discovered configuration should at least match the
        # default Yinyang on modeled cost (the space contains it and more).
        X, k = task
        results = random_search(X, k, budget=8, max_iter=4, seed=1)
        baseline = exhaustive_search(
            X, k, [KnobConfig(bound="yinyang")], max_iter=4
        )[0]
        assert results[0].metric_value <= baseline.metric_value * 1.3
