"""White-box tests of algorithm internals: the specific mechanisms each
method is named for (heap decay, annulus/ball candidate sets, suffix-min
invariants, Eq. 12 inheritance, disjoint search balls)."""


import numpy as np
import pytest

from repro.core.annular import AnnularKMeans
from repro.core.drake import DrakeKMeans
from repro.core.exponion import ExponionKMeans
from repro.core.heap import HeapKMeans
from repro.core.initialization import init_kmeans_plus_plus
from repro.core.lloyd import LloydKMeans
from repro.core.pruning import centroid_separations
from repro.core.search import SearchKMeans
from repro.core.unik import UniKKMeans
from repro.datasets import make_blobs


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(500, 5, 7, seed=91)
    return X


class TestHeapInternals:
    def test_heap_entries_cover_all_points(self, data):
        algo = HeapKMeans()
        algo.fit(data, 6, seed=0, max_iter=8)
        total = sum(len(heap) for heap in algo._heaps)
        assert total == len(data)

    def test_heap_membership_matches_labels(self, data):
        algo = HeapKMeans()
        result = algo.fit(data, 6, seed=0, max_iter=8)
        for j, heap in enumerate(algo._heaps):
            for _, i in heap:
                assert result.labels[i] == j

    def test_effective_gaps_nonnegative_at_convergence(self, data):
        algo = HeapKMeans()
        result = algo.fit(data, 6, seed=0, max_iter=60)
        assert result.converged
        for j, heap in enumerate(algo._heaps):
            if heap:
                key, _ = heap[0]
                assert key - algo._decay[j] >= -1e-9

    def test_decay_monotone(self, data):
        algo = HeapKMeans()
        algo.fit(data, 6, seed=0, max_iter=8)
        assert (algo._decay >= 0.0).all()


class TestDrakeInternals:
    def test_suffix_min_invariant_after_fit(self, data):
        algo = DrakeKMeans()
        algo.fit(data, 12, seed=0, max_iter=8)
        diffs = np.diff(algo._lbs, axis=1)
        assert (diffs >= -1e-9).all(), "bounds must be non-decreasing in rank"

    def test_order_entries_are_valid_centroids(self, data):
        algo = DrakeKMeans()
        algo.fit(data, 12, seed=0, max_iter=8)
        assert algo._order.min() >= 0 and algo._order.max() < 12

    def test_order_excludes_assigned_after_initial_scan(self, data):
        algo = DrakeKMeans()
        algo.fit(data, 12, seed=0, max_iter=1)
        for i in range(len(data)):
            assert algo._labels[i] not in algo._order[i]


class TestAnnularInternals:
    def test_annulus_contains_first_and_second(self, data):
        """After convergence, the stored (a, second) pair must lie within
        the annulus radius the algorithm would use."""
        algo = AnnularKMeans()
        result = algo.fit(data, 8, seed=0, max_iter=60)
        assert result.converged
        from repro.common.distance import norms

        cnorms = norms(algo._centroids)
        xnorms = algo._xnorms
        for i in range(0, len(data), 37):
            radius = max(float(algo._ub[i]), float(algo._ub2[i]))
            a = result.labels[i]
            s_idx = algo._second[i]
            assert abs(cnorms[a] - xnorms[i]) <= radius + 1e-7
            assert abs(cnorms[s_idx] - xnorms[i]) <= radius + 1e-7

    def test_second_differs_from_assigned(self, data):
        algo = AnnularKMeans()
        result = algo.fit(data, 8, seed=0, max_iter=20)
        assert (algo._second != result.labels).all()


class TestExponionInternals:
    def test_ball_radius_covers_second_nearest(self, data):
        """Eq. 6 soundness check against brute force at a converged state."""
        algo = ExponionKMeans()
        result = algo.fit(data, 8, seed=0, max_iter=60)
        centroids = algo._centroids
        cc, s = centroid_separations(centroids)
        dists = np.linalg.norm(data[:, None] - centroids[None, :], axis=2)
        for i in range(0, len(data), 29):
            a = result.labels[i]
            da = dists[i, a]
            radius = 2.0 * da + 2.0 * float(s[a])
            order = np.argsort(dists[i])
            second = order[1] if order[0] == a else order[0]
            assert cc[a, second] <= radius + 1e-7


class TestSearchInternals:
    def test_search_balls_disjoint(self, data):
        """Half-minimum-separation balls around centroids never overlap."""
        C = init_kmeans_plus_plus(data, 10, seed=0)
        _, s = centroid_separations(C)
        for i in range(10):
            for j in range(i + 1, 10):
                gap = np.linalg.norm(C[i] - C[j])
                assert s[i] + s[j] <= gap + 1e-9

    def test_preassigned_points_truly_nearest(self, data):
        algo = SearchKMeans()
        C0 = init_kmeans_plus_plus(data, 6, seed=1)
        result = algo.fit(data, 6, initial_centroids=C0, max_iter=3)
        base = LloydKMeans().fit(data, 6, initial_centroids=C0, max_iter=3)
        np.testing.assert_array_equal(result.labels, base.labels)


class TestUniKInheritance:
    def test_eq12_inherited_bounds_sound(self, data):
        """Child bounds derived by Eq. 12 never overstate the truth.

        For every parent/child pair: |d(child_pivot, c) - d(parent_pivot, c)|
        <= psi, which is exactly what makes ub+psi / lb-psi sound.
        """
        algo = UniKKMeans()
        algo.fit(data, 8, seed=0, max_iter=3)
        centroids = algo._centroids
        for node in algo.tree.root.iter_subtree():
            for child in node.children:
                d_parent = np.linalg.norm(centroids - node.pivot, axis=1)
                d_child = np.linalg.norm(centroids - child.pivot, axis=1)
                assert (np.abs(d_parent - d_child) <= child.psi + 1e-9).all()

    def test_object_bounds_sound_after_fit(self, data):
        """Every surviving object's ub/glb is audited against brute force."""
        algo = UniKKMeans(traversal="single")
        algo.fit(data, 8, seed=0, max_iter=10)
        centroids = algo._centroids
        for obj in algo._objects:
            pivot = obj.node.pivot if obj.node is not None else algo.X[obj.point]
            dists = np.linalg.norm(centroids - pivot, axis=1)
            assert obj.ub >= dists[obj.a] - 1e-7
            for g, members in enumerate(algo.groups.members):
                others = members[members != obj.a]
                if len(others):
                    assert obj.glb[g] <= dists[others].min() + 1e-7
