"""The analyzer's own acceptance gate: the shipped tree is clean.

Runs the full rule set over ``src/`` exactly as ``python -m repro lint src``
does and asserts zero non-baselined findings — the pytest wrapper the issue
requires so a regression in the instrumentation contract fails tier-1, not
just CI lint.
"""

from pathlib import Path

from repro.analysis import analyze_paths, load_baseline
from repro.analysis.baseline import DEFAULT_BASELINE_NAME

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def test_src_tree_has_no_unbaselined_findings():
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME)
    report = analyze_paths([SRC], root=REPO_ROOT, baseline=baseline)
    assert report.files_scanned > 50
    details = "\n".join(f.format() for f in report.findings)
    assert report.parse_errors == []
    assert not report.findings, f"non-baselined findings:\n{details}"


def test_src_tree_has_no_unused_suppressions():
    # Every ``# repro: ignore[...]`` in the tree must still silence a
    # live finding — the --strict-suppressions contract CI enforces.
    report = analyze_paths([SRC], root=REPO_ROOT)
    stale = "\n".join(u.format() for u in report.unused_suppressions)
    assert report.unused_suppressions == [], f"stale suppressions:\n{stale}"
    assert report.suppressed > 0  # justified suppressions exist and are used


def test_shipped_baseline_is_empty():
    # The tentpole's triage requirement: everything real was fixed or
    # suppressed with justification, so the committed baseline carries
    # no grandfathered debt.
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME)
    assert len(baseline) == 0


def test_lint_cli_exits_zero_on_clean_tree(capsys):
    import os

    from repro.cli import main

    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        exit_code = main(["lint", "src"])
    finally:
        os.chdir(cwd)
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
