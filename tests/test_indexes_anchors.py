"""Anchors-hierarchy-specific tests (Moore 2000, paper reference [51])."""

import math

import numpy as np
import pytest

from repro.core.index_kmeans import IndexKMeans
from repro.core.lloyd import LloydKMeans
from repro.datasets import make_blobs, make_spatial
from repro.indexes import AnchorsHierarchy, BallTree


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(500, 4, 8, seed=101)
    return X


class TestConstruction:
    def test_invariants(self, data):
        AnchorsHierarchy(data).check_invariants()

    def test_capacity_respected(self, data):
        tree = AnchorsHierarchy(data, capacity=25)
        assert all(leaf.num <= 25 for leaf in tree.leaves())

    def test_binary_internal_structure(self, data):
        tree = AnchorsHierarchy(data)
        for node in tree.root.iter_subtree():
            if not node.is_leaf:
                assert len(node.children) == 2  # agglomerative merging

    def test_anchor_count_near_sqrt_n(self, data):
        # The top level grows about sqrt(n) anchors before agglomeration;
        # the root's subtree should therefore be deeper than a flat split
        # but bounded.  We check the leaf count is plausible.
        tree = AnchorsHierarchy(data, capacity=30)
        n_leaves = len(tree.leaves())
        assert n_leaves >= math.sqrt(len(data)) / 2

    def test_middle_out_leaf_quality(self):
        """On hot-spot data, anchor leaves should be tight like Ball-tree's."""
        X = make_spatial(800, hotspots=20, hotspot_std=0.004, seed=5)
        anchors_stats = AnchorsHierarchy(X, capacity=30).stats()
        ball_stats = BallTree(X, capacity=30).stats()
        assert anchors_stats.leaf_radius_mean < 3 * ball_stats.leaf_radius_mean


class TestStealing:
    def test_each_point_owned_once(self, data):
        tree = AnchorsHierarchy(data)
        covered = tree.root.subtree_point_indices()
        assert len(covered) == len(data)
        assert len(np.unique(covered)) == len(data)

    def test_duplicate_points_degenerate(self):
        tree = AnchorsHierarchy(np.ones((80, 3)), capacity=16)
        tree.check_invariants()
        assert tree.root.num == 80


class TestClustering:
    @pytest.mark.parametrize("k", [3, 12])
    def test_exact_with_filtering(self, k, data, centroids_factory):
        C0 = centroids_factory(data, k)
        base = LloydKMeans().fit(data, k, initial_centroids=C0, max_iter=50)
        result = IndexKMeans(index="anchors").fit(
            data, k, initial_centroids=C0, max_iter=50
        )
        np.testing.assert_array_equal(result.labels, base.labels)

    def test_range_search_correct(self, data):
        tree = AnchorsHierarchy(data)
        center = data.mean(axis=0)
        hits = set(tree.range_search(center, 2.0))
        brute = set(np.flatnonzero(np.linalg.norm(data - center, axis=1) <= 2.0))
        assert hits == brute
