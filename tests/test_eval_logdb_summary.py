"""Tests for the evaluation-log store and the computed Table 4 ratings."""

import pytest

from repro.eval.harness import RunRecord
from repro.eval.leaderboard import Leaderboard
from repro.eval.logdb import EvaluationLog
from repro.eval.runtime import FailedRun, RunKey
from repro.eval.summary import (
    CRITERIA,
    PARAMETER_FREE,
    rate_algorithms,
    render_circles,
)


def _record(name, *, time=1.0, footprint=10, point=100, bound=50, dist=1000,
            cost=5000.0):
    return RunRecord(
        algorithm=name, n=100, d=4, k=5, repeats=1,
        total_time=time, assignment_time=time, refinement_time=0.0,
        setup_time=0.0, sse=1.0, n_iter=5.0, pruning_ratio=0.5,
        distance_computations=dist, point_accesses=point, node_accesses=0,
        bound_accesses=bound, bound_updates=0, footprint_floats=footprint,
        modeled_cost=cost,
    )


class TestEvaluationLog:
    def test_in_memory_add_query(self):
        log = EvaluationLog()
        log.add(_record("lloyd"), dataset="toy")
        log.add(_record("elkan", time=0.5), dataset="toy")
        assert len(log) == 2
        assert log.algorithms() == ["elkan", "lloyd"]
        assert len(log.query(algorithm="lloyd")) == 1

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = EvaluationLog(path)
        log.add(_record("lloyd"), dataset="toy", seed=3)
        reloaded = EvaluationLog(path)
        assert len(reloaded) == 1
        assert reloaded.query(seed=3)[0]["dataset"] == "toy"

    def test_predicate_filters(self):
        log = EvaluationLog()
        log.add(_record("a", time=1.0))
        log.add(_record("b", time=3.0))
        fast = log.query(total_time=lambda t: t < 2.0)
        assert [r["algorithm"] for r in fast] == ["a"]

    def test_mean_and_best(self):
        log = EvaluationLog()
        log.add(_record("a", time=1.0))
        log.add(_record("a", time=3.0))
        log.add(_record("b", time=0.5))
        assert log.mean("total_time", algorithm="a") == pytest.approx(2.0)
        assert log.best("total_time")["algorithm"] == "b"
        assert log.best("total_time", minimize=False)["algorithm"] == "a"

    def test_missing_field_raises(self):
        log = EvaluationLog()
        log.add(_record("a"))
        with pytest.raises(KeyError):
            log.mean("nonexistent")

    def test_add_many_with_context(self):
        log = EvaluationLog()
        count = log.add_many([_record("a"), _record("b")], dataset="x")
        assert count == 2
        assert all(r["dataset"] == "x" for r in log.query())


class TestQueryNullSemantics:
    """``field=None`` matches explicit null; missing fields never match.

    Regression: both cases used to go through ``record.get`` and were
    conflated — ``note=None`` matched every record without the field, and
    predicates never saw present-but-null values."""

    def _log(self):
        log = EvaluationLog()
        log.add({"algorithm": "a", "note": None})
        log.add({"algorithm": "b", "note": "tuned"})
        log.add({"algorithm": "c"})  # no note field at all
        return log

    def test_none_filter_matches_only_explicit_null(self):
        matches = self._log().query(note=None)
        assert [r["algorithm"] for r in matches] == ["a"]

    def test_missing_field_never_matches_value_filter(self):
        matches = self._log().query(note="tuned")
        assert [r["algorithm"] for r in matches] == ["b"]

    def test_predicate_sees_present_null_not_missing(self):
        seen = []

        def spy(value):
            seen.append(value)
            return value is None

        matches = self._log().query(note=spy)
        assert [r["algorithm"] for r in matches] == ["a"]
        # The predicate ran on both present values (null included), and
        # never on the record missing the field.
        assert seen == [None, "tuned"]

    def test_combined_filters_keep_null_semantics(self):
        log = self._log()
        assert log.query(algorithm="c", note=None) == []
        assert [r["algorithm"] for r in log.query(algorithm="a", note=None)] == ["a"]


class TestLeaderboardNoneMetric:
    def test_none_metric_records_are_skipped(self):
        board = Leaderboard(metric="modeled_cost")
        complete = _record("a", cost=10.0)
        unmeasured = _record("b", cost=1.0)
        unmeasured.modeled_cost = None  # e.g. rebuilt from a legacy log
        ranking = board.add_task([complete, unmeasured])
        assert ranking == ["a"]
        assert board.top1 == {"a": 1}

    def test_all_none_task_contributes_nothing(self):
        board = Leaderboard(metric="modeled_cost")
        unmeasured = _record("b")
        unmeasured.modeled_cost = None
        assert board.add_task([unmeasured]) == []
        assert board.tasks == 0


class TestSummaryRatings:
    def test_requires_tasks(self):
        with pytest.raises(ValueError):
            rate_algorithms([])

    def test_all_criteria_scored(self):
        tasks = [[_record("a"), _record("b", cost=1000.0)]]
        ratings = rate_algorithms(tasks)
        for name in ("a", "b"):
            assert set(ratings[name]) == set(CRITERIA)
            assert all(1 <= v <= 5 for v in ratings[name].values())

    def test_space_ordering(self):
        tasks = [[
            _record("small", footprint=1),
            _record("big", footprint=10_000),
        ]]
        ratings = rate_algorithms(tasks)
        assert ratings["small"]["space_saving"] > ratings["big"]["space_saving"]

    def test_leaderboard_reflects_cost_wins(self):
        tasks = [
            [_record("fast", cost=100.0), _record("slow", cost=10_000.0)]
            for _ in range(3)
        ]
        ratings = rate_algorithms(tasks)
        assert ratings["fast"]["leaderboard"] > ratings["slow"]["leaderboard"]

    def test_parameter_free_structural(self):
        tasks = [[_record("hamerly"), _record("yinyang")]]
        ratings = rate_algorithms(tasks)
        assert ratings["hamerly"]["parameter_free"] == 5
        assert ratings["yinyang"]["parameter_free"] == 2
        assert "hamerly" in PARAMETER_FREE

    def test_render_circles(self):
        assert render_circles(5) == "●●●●●"
        assert render_circles(0) == "○○○○○"
        assert render_circles(3) == "●●●○○"
        assert len(render_circles(99)) == 5


class TestCheckpointIndex:
    """The resume index layered on the evaluation log."""

    def _failed(self, name):
        key = RunKey(algorithm=name, dataset="toy", n=100, d=4, k=5,
                     seed=0, max_iter=10)
        return FailedRun(key=key, error_type="RunTimeoutError",
                         message="hung", attempts=2, elapsed=1.5)

    def _key_of(self, name):
        return RunKey(algorithm=name, dataset="toy", n=100, d=4, k=5,
                      seed=0, max_iter=10)

    def test_successes_and_failures_partition(self):
        log = EvaluationLog()
        log.add(_record("lloyd"), dataset="toy", seed=0, max_iter=10)
        log.add(self._failed("elkan"))
        assert len(log.successes()) == 1
        assert len(log.failures()) == 1
        assert log.completed_keys() == {self._key_of("lloyd")}
        assert log.failed_keys() == {self._key_of("elkan")}

    def test_success_after_failure_wins(self):
        log = EvaluationLog()
        log.add(self._failed("lloyd"))
        assert log.failed_keys() == {self._key_of("lloyd")}
        log.add(_record("lloyd"), dataset="toy", seed=0, max_iter=10)
        assert log.failed_keys() == set()
        assert log.has_completed(self._key_of("lloyd"))

    def test_failure_never_shadows_success(self):
        log = EvaluationLog()
        log.add(_record("lloyd"), dataset="toy", seed=0, max_iter=10)
        log.add(self._failed("lloyd"))
        assert log.has_completed(self._key_of("lloyd"))
        assert log.failed_keys() == set()

    def test_latest_success_returns_newest(self):
        log = EvaluationLog()
        log.add(_record("lloyd", time=1.0), dataset="toy", seed=0, max_iter=10)
        log.add(_record("lloyd", time=2.0), dataset="toy", seed=0, max_iter=10)
        stored = log.latest_success(self._key_of("lloyd"))
        assert stored["total_time"] == pytest.approx(2.0)

    def test_failed_run_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = EvaluationLog(path)
        log.add(self._failed("elkan"))
        reloaded = EvaluationLog(path)
        assert reloaded.failed_keys() == {self._key_of("elkan")}
        (failure,) = reloaded.failures()
        assert failure["error_type"] == "RunTimeoutError"
        assert failure["attempts"] == 2

    def test_records_without_keys_are_queryable_not_indexed(self):
        log = EvaluationLog()
        log.add({"algorithm": "lloyd", "note": "no key fields"})
        assert len(log) == 1
        assert log.completed_keys() == set()


class TestAggregatesTolerateFailures:
    def _failed(self, name):
        key = RunKey(algorithm=name, dataset="toy", n=100, d=4, k=5,
                     seed=0, max_iter=10)
        return FailedRun(key=key, error_type="WorkerCrashError",
                         message="died", attempts=1, elapsed=0.1)

    def test_ratings_skip_failed_cells(self):
        tasks = [
            [_record("a"), _record("b")],
            [_record("a"), self._failed("b")],
        ]
        ratings = rate_algorithms(tasks)
        assert set(ratings) == {"a", "b"}

    def test_all_failed_task_skipped(self):
        tasks = [
            [_record("a"), _record("b")],
            [self._failed("a"), self._failed("b")],
        ]
        ratings = rate_algorithms(tasks)
        assert set(ratings) == {"a", "b"}

    def test_no_successes_at_all_raises(self):
        with pytest.raises(ValueError, match="no successful runs"):
            rate_algorithms([[self._failed("a")]])

    def test_leaderboard_skips_failed_and_uncounts_dead_tasks(self):
        board = Leaderboard(metric="total_time")
        assert board.add_task([_record("a", time=1.0),
                               self._failed("b")]) == ["a"]
        assert board.add_task([self._failed("a"), self._failed("b")]) == []
        assert board.tasks == 1
        assert board.top1["a"] == 1
