"""Unit tests for the array-backend manager (``repro.backend``).

Three concerns, per docs/array_backends.md:

* **Registration and fallback** — numpy is always registered and active
  by default; unknown names raise a classified ``ConfigurationError``;
  optional backends that cannot run here raise
  ``BackendUnavailableError`` carrying a human-readable reason (which the
  conformance suite turns into a pytest skip — never a silent pass).
* **Op semantics every backend must honor** — deterministic first-index
  argmin tie-break, float64-in/float64-out round-trips, the bincount
  scatter-add contract.  These run on *every* backend registered in this
  process, so a CI machine with torch installed exercises the torch cells
  automatically.
* **Context discipline** — ``use()`` restores the previous backend on
  exit (even on error) and validates eagerly at entry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    MANAGED_OPS,
    OPTIONAL_BACKENDS,
    TOLERANCE_RTOL,
    BackendUnavailableError,
    available_backends,
    backend_manager,
    unavailable_reason,
)
from repro.common.exceptions import ConfigurationError


def _registered_backends():
    return available_backends()


class TestRegistration:
    def test_numpy_always_registered_and_default(self):
        assert "numpy" in available_backends()
        assert backend_manager.active_name() == "numpy"

    def test_numpy_listed_first(self):
        assert available_backends()[0] == "numpy"

    def test_unknown_backend_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown array backend"):
            backend_manager.get("jax")

    def test_unknown_backend_error_lists_registered(self):
        with pytest.raises(ConfigurationError, match="numpy"):
            backend_manager.get("not-a-backend")

    @pytest.mark.parametrize("name", OPTIONAL_BACKENDS)
    def test_absent_optional_backend_raises_with_reason(self, name):
        if name in available_backends():
            pytest.skip(f"array backend {name!r} is installed here")
        reason = unavailable_reason(name)
        assert reason, f"unavailable backend {name!r} must record a reason"
        with pytest.raises(BackendUnavailableError) as excinfo:
            backend_manager.get(name)
        assert excinfo.value.backend == name
        assert excinfo.value.reason == reason

    def test_backend_unavailable_is_configuration_error(self):
        # Callers catching the broad classified error see both cases.
        assert issubclass(BackendUnavailableError, ConfigurationError)

    def test_available_backend_has_no_unavailable_reason(self):
        assert unavailable_reason("numpy") is None

    @pytest.mark.parametrize("name", sorted(MANAGED_OPS))
    def test_every_registered_backend_provides_managed_ops(self, name):
        for backend_name in _registered_backends():
            backend = backend_manager.get(backend_name)
            assert callable(getattr(backend, name)), (
                f"backend {backend_name!r} is missing managed op {name!r}"
            )

    def test_tolerance_table_covers_supported_dtypes(self):
        assert set(TOLERANCE_RTOL) == {"float64", "float32"}
        assert TOLERANCE_RTOL["float64"] < TOLERANCE_RTOL["float32"]


class TestContext:
    def test_use_restores_previous_backend(self):
        assert backend_manager.active_name() == "numpy"
        with backend_manager.use("numpy"):
            assert backend_manager.active_name() == "numpy"
        assert backend_manager.active_name() == "numpy"

    def test_use_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with backend_manager.use("numpy"):
                raise RuntimeError("boom")
        assert backend_manager.active_name() == "numpy"

    def test_use_validates_eagerly(self):
        with pytest.raises(ConfigurationError):
            backend_manager.use("not-a-backend")

    def test_nested_contexts_unwind_in_order(self):
        names = _registered_backends()
        inner = names[-1]
        with backend_manager.use("numpy"):
            with backend_manager.use(inner):
                assert backend_manager.active_name() == inner
            assert backend_manager.active_name() == "numpy"

    def test_non_managed_attribute_is_attribute_error(self):
        with pytest.raises(AttributeError):
            backend_manager.not_an_op


@pytest.mark.parametrize("backend_name", _registered_backends())
class TestOpSemantics:
    """Contracts every registered backend must satisfy bit-for-bit."""

    def test_argmin_first_index_tie_break(self, backend_name):
        # Duplicated minima: the winner must be the *lowest* index, the
        # NumPy convention every pruning kernel assumes.  Accelerator
        # argmin tie order is not trusted — adapters implement the
        # tie-break explicitly, and this is the test that keeps them honest.
        backend = backend_manager.get(backend_name)
        rows = np.array(
            [
                [3.0, 1.0, 1.0, 2.0],
                [5.0, 5.0, 5.0, 5.0],
                [2.0, 4.0, 2.0, 2.0],
            ]
        )
        got = backend.argmin(rows, axis=1)
        expected = np.argmin(rows, axis=1)
        assert np.array_equal(got, expected)
        assert got.tolist() == [1, 0, 0]

    def test_argmin_flat_and_axis0(self, backend_name):
        backend = backend_manager.get(backend_name)
        rows = np.array([[2.0, 1.0], [1.0, 3.0]])
        assert int(backend.argmin(rows)) == int(np.argmin(rows))
        assert np.array_equal(
            backend.argmin(rows, axis=0), np.argmin(rows, axis=0)
        )

    def test_float64_round_trip(self, backend_name):
        backend = backend_manager.get(backend_name)
        rng = np.random.default_rng(7)
        X = rng.standard_normal((40, 5))
        for op_output in (
            backend.sq_norms(X),
            backend.matmul(X, X.T),
            backend.einsum("ij,ij->i", X, X),
            backend.partition(X, 1, axis=1),
        ):
            assert isinstance(op_output, np.ndarray)
            assert op_output.dtype == np.float64

    def test_argmin_returns_integer_numpy(self, backend_name):
        backend = backend_manager.get(backend_name)
        labels = backend.argmin(np.array([[1.0, 0.5], [0.2, 0.9]]), axis=1)
        assert isinstance(labels, np.ndarray)
        assert labels.dtype.kind in "iu"

    def test_bincount_scatter_add(self, backend_name):
        backend = backend_manager.get(backend_name)
        labels = np.array([0, 2, 2, 1, 0, 2], dtype=np.intp)
        weights = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        got = backend.bincount(labels, weights=weights, minlength=5)
        expected = np.bincount(labels, weights=weights, minlength=5)
        assert np.array_equal(got, expected)
        assert got.shape == (5,)

    def test_partition_postcondition(self, backend_name):
        # Contract is the np.partition postcondition (element kth in its
        # sorted place, smaller-or-equal values before it) — a full sort
        # satisfies it, so we assert the postcondition, not np equality.
        backend = backend_manager.get(backend_name)
        rng = np.random.default_rng(11)
        rows = rng.standard_normal((10, 7))
        kth = 1
        got = backend.partition(rows, kth, axis=1)
        assert np.array_equal(
            np.sort(got, axis=1), np.sort(rows, axis=1)
        ), "partition must permute, not alter, each row"
        expected_kth = np.partition(rows, kth, axis=1)[:, kth]
        assert np.array_equal(got[:, kth], expected_kth)
        assert (got[:, :kth] <= got[:, [kth]]).all()

    def test_where_take_asarray(self, backend_name):
        backend = backend_manager.get(backend_name)
        values = np.array([10.0, 20.0, 30.0, 40.0])
        mask = np.array([True, False, True, False])
        assert np.array_equal(
            backend.where(mask, values, -values),
            np.where(mask, values, -values),
        )
        idx = np.array([3, 0, 2], dtype=np.intp)
        assert np.array_equal(backend.take(values, idx), values[idx])
        round_tripped = backend.to_numpy(backend.asarray(values))
        assert isinstance(round_tripped, np.ndarray)
        assert np.array_equal(round_tripped, values)

    def test_zeros_and_arange(self, backend_name):
        backend = backend_manager.get(backend_name)
        z = backend.zeros((3, 2))
        assert isinstance(z, np.ndarray)
        assert z.shape == (3, 2) and not z.any()
        assert np.array_equal(backend.arange(5), np.arange(5))


class TestNumpyBitIdentity:
    """The numpy backend must delegate to the exact same NumPy calls."""

    def test_matmul_and_einsum_bitwise(self):
        backend = backend_manager.get("numpy")
        rng = np.random.default_rng(3)
        A = rng.standard_normal((17, 6))
        B = rng.standard_normal((6, 9))
        assert np.array_equal(backend.matmul(A, B), np.matmul(A, B))
        assert np.array_equal(
            backend.sq_norms(A), np.einsum("ij,ij->i", A, A)
        )

    def test_scatter_add_float_order(self):
        # The float non-associativity counterexample (see
        # tests/test_exec_sharded.py): summation order is observable at
        # 1e16, so the numpy backend must preserve np.bincount's order.
        labels = np.zeros(3, dtype=np.intp)
        weights = np.array([1.0, 1.0, 1e16])
        backend = backend_manager.get("numpy")
        got = backend.bincount(labels, weights=weights, minlength=1)
        assert got[0] == np.bincount(labels, weights=weights, minlength=1)[0]
