"""Property-based tests (hypothesis) on core invariants.

These verify the load-bearing guarantees across randomly generated inputs:
tree invariants for every index, trajectory equivalence of the accelerated
methods, bound soundness of the block-vector filter, range-search
correctness, and batch-vs-scalar parity of the distance kernels (the
bit-identity contract the vectorized backend is built on, see
``docs/backends.md``).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.common.distance import (
    block_sq_distances,
    chunked_sq_distances,
    euclidean,
    one_to_many_distances,
    paired_distances,
    paired_sq_distances,
    pairwise_sq_distances,
    sq_euclidean,
)
from repro.core import make_algorithm
from repro.instrumentation.counters import OpCounters
from repro.core.initialization import init_kmeans_plus_plus
from repro.core.lloyd import LloydKMeans
from repro.core.pruning import half_min_separation, second_max, two_smallest
from repro.core.vector import block_norms
from repro.indexes import build_index

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def datasets(min_n=20, max_n=120, min_d=1, max_d=8):
    """Strategy producing well-behaved float data matrices."""
    return st.builds(
        lambda n, d, seed: np.random.default_rng(seed).normal(size=(n, d)) * 3.0,
        st.integers(min_n, max_n),
        st.integers(min_d, max_d),
        st.integers(0, 10_000),
    )


@settings(**SETTINGS)
@given(X=datasets(), name=st.sampled_from(
    ["ball-tree", "kd-tree", "m-tree", "cover-tree", "hkt", "anchors"]))
def test_tree_invariants_hold_for_random_data(X, name):
    tree = build_index(name, X, **({} if name == "cover-tree" else {"capacity": 8}))
    tree.check_invariants()


@settings(**SETTINGS)
@given(X=datasets(min_n=30), seed=st.integers(0, 1000))
def test_range_search_equals_bruteforce(X, seed):
    rng = np.random.default_rng(seed)
    tree = build_index("ball-tree", X, capacity=6)
    center = X[int(rng.integers(0, len(X)))] + rng.normal(0, 0.5, size=X.shape[1])
    radius = float(rng.uniform(0.1, 5.0))
    hits = set(tree.range_search(center, radius))
    brute = set(np.flatnonzero(np.linalg.norm(X - center, axis=1) <= radius))
    assert hits == brute


@settings(**SETTINGS)
@given(
    X=datasets(min_n=40, max_n=150),
    k=st.integers(2, 8),
    name=st.sampled_from(
        ["elkan", "hamerly", "yinyang", "drake", "heap", "annular",
         "exponion", "drift", "vector", "pami20", "unik", "index", "sphere"]
    ),
)
def test_accelerated_methods_match_lloyd(X, k, name):
    C0 = init_kmeans_plus_plus(X, k, seed=0)
    base = LloydKMeans().fit(X, k, initial_centroids=C0, max_iter=40)
    result = make_algorithm(name).fit(X, k, initial_centroids=C0, max_iter=40)
    assert result.sse == pytest.approx(base.sse, rel=1e-7, abs=1e-9)


@settings(**SETTINGS)
@given(X=datasets(min_n=10, max_n=60, min_d=2), blocks=st.integers(1, 4))
def test_block_norm_bound_soundness(X, blocks):
    """The block-vector inner-product bound never exceeds the true distance."""
    blocks = min(blocks, X.shape[1])
    A, B = X[: len(X) // 2], X[len(X) // 2 :]
    if len(A) == 0 or len(B) == 0:
        return
    ab = block_norms(A, blocks)
    bb = block_norms(B, blocks)
    an = np.einsum("ij,ij->i", A, A)
    bn = np.einsum("ij,ij->i", B, B)
    for i in range(len(A)):
        for j in range(len(B)):
            sq = an[i] + bn[j] - 2.0 * float(ab[i] @ bb[j])
            bound = np.sqrt(max(sq, 0.0))
            assert bound <= np.linalg.norm(A[i] - B[j]) + 1e-7


@settings(**SETTINGS)
@given(values=arrays(np.float64, st.integers(1, 30),
                     elements=st.floats(-1e6, 1e6, allow_nan=False)))
def test_two_smallest_consistency(values):
    idx, lo, hi = two_smallest(values)
    assert lo == values.min()
    assert idx == int(np.argmin(values))
    if len(values) > 1:
        assert hi >= lo
        assert hi == np.partition(np.delete(values, idx), 0)[0]


@settings(**SETTINGS)
@given(values=arrays(np.float64, st.integers(1, 30),
                     elements=st.floats(0, 1e6, allow_nan=False)))
def test_second_max_consistency(values):
    idx, top, second = second_max(values)
    assert top == values.max()
    assert second <= top


@settings(**SETTINGS)
@given(X=datasets(min_n=5, max_n=30, min_d=2, max_d=4))
def test_half_min_separation_soundness(X):
    """s(j) is half the distance to j's true nearest other centroid."""
    from repro.common.distance import centroid_pairwise_distances

    cc = centroid_pairwise_distances(X)
    s = half_min_separation(cc)
    for j in range(len(X)):
        others = np.delete(np.linalg.norm(X - X[j], axis=1), j)
        assert s[j] == pytest.approx(others.min() / 2.0, rel=1e-9)


@settings(**SETTINGS)
@given(X=datasets(min_n=30, max_n=100), k=st.integers(2, 6))
def test_sse_never_increases_with_iterations(X, k):
    """Lloyd's SSE is non-increasing in the iteration budget."""
    C0 = init_kmeans_plus_plus(X, k, seed=1)
    previous = np.inf
    for budget in [1, 3, 10]:
        result = LloydKMeans().fit(X, k, initial_centroids=C0, max_iter=budget)
        assert result.sse <= previous + 1e-9
        previous = result.sse


# ---------------------------------------------------------------------------
# Batch-vs-scalar kernel parity (the vectorized-backend bit-identity contract).
# ---------------------------------------------------------------------------


@settings(**SETTINGS)
@given(X=datasets(min_n=2, max_n=60, min_d=1), seed=st.integers(0, 10_000))
def test_one_to_many_bitwise_equals_scalar_loop(X, seed):
    """one_to_many_distances == looped euclidean() to *exact* equality.

    The sampled Y deliberately contains duplicate rows (gathered with
    replacement) and can be a single row; d=1 comes from the strategy.
    Exact equality — not allclose — is the documented contract: it is what
    preserves tie-breaking when a pointwise candidate loop is batched.
    """
    rng = np.random.default_rng(seed)
    x = X[int(rng.integers(len(X)))]
    m = 1 + int(rng.integers(len(X)))  # m=1: the single-point degenerate
    Y = X[rng.integers(0, len(X), size=m)]  # sampling w/ replacement: dupes
    batch = one_to_many_distances(x, Y)
    scalar = np.array([euclidean(x, y) for y in Y])
    assert (batch == scalar).all()


@settings(**SETTINGS)
@given(X=datasets(min_n=2, max_n=60, min_d=1), seed=st.integers(0, 10_000))
def test_paired_kernels_bitwise_equal_scalar_loop(X, seed):
    rng = np.random.default_rng(seed)
    half = len(X) // 2
    A, B = X[:half], X[half : 2 * half]
    sq = paired_sq_distances(A, B)
    assert (sq == np.array([sq_euclidean(a, b) for a, b in zip(A, B)])).all()
    # A (d,) second operand broadcasts against every row of A — the
    # tighten-to-own-centroid kernel of the vectorized backend.
    b = X[int(rng.integers(len(X)))]
    batch = paired_distances(A, b)
    assert (batch == np.array([euclidean(a, b) for a in A])).all()


@settings(**SETTINGS)
@given(X=datasets(min_n=2, max_n=30, min_d=1), seed=st.integers(0, 10_000))
def test_block_sq_distances_entrywise_equals_scalar(X, seed):
    rng = np.random.default_rng(seed)
    A = X[: max(1, len(X) // 3)]
    B = X[rng.integers(0, len(X), size=1 + int(rng.integers(8)))]
    block = block_sq_distances(A, B)
    for i in range(len(A)):
        for j in range(len(B)):
            assert block[i, j] == sq_euclidean(A[i], B[j])


@settings(**SETTINGS)
@given(
    dists=arrays(
        np.float64,
        st.tuples(st.integers(1, 25), st.integers(1, 8)),
        # A tiny value alphabet forces many exact duplicates per row — the
        # tie-heavy regime where argmin conventions actually matter.
        elements=st.sampled_from([0.0, 1.0, 2.0]),
    ),
    seed=st.integers(0, 10_000),
)
def test_batched_argmin_breaks_ties_toward_lowest_index(dists, seed):
    """np.argmin == the reference backends' strict-< first-wins scan.

    Every vectorized assignment pass funnels through a row-wise ``argmin``
    (Lloyd's full scan, the frontier's pivot test, the leaf scan), while
    the reference loops candidates in ascending order keeping the first
    strictly smaller distance.  Both resolve duplicated distances to the
    *lowest* index; this pins that convention, including through the
    masked-inf and candidate-subset formulations the index traversal uses.
    """
    best = np.argmin(dists, axis=1)
    for row, winner in zip(dists, best):
        scan = 0
        for j in range(1, len(row)):
            if row[j] < row[scan]:  # strict <: ties keep the earlier index
                scan = j
        assert winner == scan
    # Candidate-subset invariance: masking non-candidates to inf and taking
    # the full-width argmin equals the subset argmin mapped back through
    # the ascending candidate list (empty masks excluded — a frontier row
    # always keeps its best candidate).
    rng = np.random.default_rng(seed)
    k = dists.shape[1]
    cand = np.flatnonzero(rng.random(k) < 0.5)
    if len(cand) == 0:
        cand = np.array([int(rng.integers(k))])
    masked = np.full_like(dists, np.inf)
    masked[:, cand] = dists[:, cand]
    assert (np.argmin(masked, axis=1) == cand[np.argmin(dists[:, cand], axis=1)]).all()


@settings(**SETTINGS)
@given(X=datasets(min_n=4, max_n=40, min_d=1), chunk=st.integers(1, 7))
def test_bulk_kernels_match_scalar_loop_tightly(X, chunk):
    """The expansion/einsum bulk kernels agree with the scalar loop to a
    tight tolerance (they don't promise bit-identity — see the distance
    module docstring) and chunking is numerically invisible."""
    A, B = X[: len(X) // 2], X[len(X) // 2 :]
    looped = np.array([[sq_euclidean(a, b) for b in B] for a in A])
    np.testing.assert_allclose(
        pairwise_sq_distances(A, B), looped, rtol=1e-9, atol=1e-9
    )
    chunked = chunked_sq_distances(A, B, chunk=chunk)
    np.testing.assert_allclose(chunked, looped, rtol=1e-12, atol=1e-12)
    # Chunk size must be bitwise-invisible, not just approximately so.
    assert (chunked == chunked_sq_distances(A, B, chunk=len(A) + 1)).all()


@settings(**SETTINGS)
@given(X=datasets(min_n=4, max_n=30, min_d=1), chunk=st.integers(1, 5))
def test_kernel_counter_charges_are_batch_invariant(X, chunk):
    """Every kernel charges per pruning-model distance, never per BLAS call."""
    A, B = X[: len(X) // 2], X[len(X) // 2 :]
    expected = len(A) * len(B)
    for kernel in (pairwise_sq_distances, block_sq_distances):
        counters = OpCounters()
        kernel(A, B, counters)
        assert counters.distance_computations == expected
    counters = OpCounters()
    chunked_sq_distances(A, B, counters, chunk=chunk)
    assert counters.distance_computations == expected
    counters = OpCounters()
    one_to_many_distances(A[0], B, counters)
    assert counters.distance_computations == len(B)
    counters = OpCounters()
    paired_sq_distances(A, A[::-1], counters)
    assert counters.distance_computations == len(A)


@settings(**SETTINGS)
@given(X=datasets(min_n=20, max_n=80), k=st.integers(1, 6))
def test_labels_point_to_nearest_centroid_at_convergence(X, k):
    k = min(k, len(X))
    result = LloydKMeans().fit(X, k, seed=0, max_iter=60)
    if not result.converged:
        return
    dists = np.linalg.norm(X[:, None] - result.centroids[None, :], axis=2)
    best = dists[np.arange(len(X)), result.labels]
    assert (best <= dists.min(axis=1) + 1e-9).all()
