"""Unit tests for the shared pruning primitives."""

import numpy as np
import pytest

from repro.core.pruning import (
    GroupView,
    centroid_separations,
    default_group_count,
    group_centroids_by_drift,
    group_centroids_kmeans,
    half_min_separation,
    second_max,
    two_smallest,
)


class TestHalfMinSeparation:
    def test_basic(self):
        cc = np.array([[0.0, 2.0, 6.0], [2.0, 0.0, 4.0], [6.0, 4.0, 0.0]])
        np.testing.assert_allclose(half_min_separation(cc), [1.0, 1.0, 2.0])

    def test_single_centroid_infinite(self):
        assert half_min_separation(np.zeros((1, 1)))[0] == np.inf

    def test_does_not_mutate_input(self):
        cc = np.array([[0.0, 1.0], [1.0, 0.0]])
        half_min_separation(cc)
        assert cc[0, 0] == 0.0


class TestTwoSmallest:
    def test_basic(self):
        idx, lo, hi = two_smallest(np.array([5.0, 1.0, 3.0]))
        assert (idx, lo, hi) == (1, 1.0, 3.0)

    def test_tie_breaks_low_index(self):
        idx, lo, hi = two_smallest(np.array([2.0, 2.0, 9.0]))
        assert idx == 0 and lo == 2.0 and hi == 2.0

    def test_single_value(self):
        idx, lo, hi = two_smallest(np.array([4.0]))
        assert (idx, lo) == (0, 4.0)
        assert hi == np.inf


class TestSecondMax:
    def test_basic(self):
        idx, top, second = second_max(np.array([1.0, 7.0, 3.0]))
        assert (idx, top, second) == (1, 7.0, 3.0)

    def test_single_value(self):
        idx, top, second = second_max(np.array([2.0]))
        assert (idx, top, second) == (0, 2.0, 0.0)


class TestDefaultGroupCount:
    @pytest.mark.parametrize("k,expected", [(1, 1), (9, 1), (10, 1), (11, 2), (100, 10), (101, 11)])
    def test_ceil_k_over_10(self, k, expected):
        assert default_group_count(k) == expected


class TestGroupings:
    def test_kmeans_grouping_covers_all(self):
        C = np.random.default_rng(0).normal(size=(20, 3))
        labels = group_centroids_kmeans(C, 4, seed=0)
        assert labels.shape == (20,)
        assert labels.min() == 0
        assert set(labels) == set(range(labels.max() + 1))

    def test_kmeans_grouping_single_group(self):
        C = np.random.default_rng(0).normal(size=(5, 2))
        labels = group_centroids_kmeans(C, 1)
        assert (labels == 0).all()

    def test_kmeans_grouping_puts_near_centroids_together(self):
        # Two far-apart tight packs must not be mixed.
        C = np.vstack([np.zeros((5, 2)), np.full((5, 2), 100.0)])
        labels = group_centroids_kmeans(C, 2, seed=1)
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_drift_grouping_chunks_sorted(self):
        drifts = np.array([0.0, 10.0, 0.1, 9.0, 0.2, 8.0])
        labels = group_centroids_by_drift(drifts, 2)
        # The three smallest drifts share a group, the three largest another.
        small = {labels[0], labels[2], labels[4]}
        large = {labels[1], labels[3], labels[5]}
        assert len(small) == 1 and len(large) == 1 and small != large

    def test_drift_grouping_more_groups_than_centroids(self):
        labels = group_centroids_by_drift(np.array([1.0, 2.0]), 10)
        assert labels.max() < 2


class TestGroupView:
    def test_members_partition(self):
        view = GroupView(np.array([0, 1, 0, 2, 1]))
        assert view.t == 3
        collected = sorted(int(i) for members in view.members for i in members)
        assert collected == [0, 1, 2, 3, 4]

    def test_max_drift_per_group(self):
        view = GroupView(np.array([0, 0, 1]))
        drifts = np.array([1.0, 5.0, 2.0])
        np.testing.assert_allclose(view.max_drift_per_group(drifts), [5.0, 2.0])


class TestCentroidSeparations:
    def test_consistency(self):
        C = np.random.default_rng(1).normal(size=(6, 4))
        cc, s = centroid_separations(C)
        masked = cc.copy()
        np.fill_diagonal(masked, np.inf)
        np.testing.assert_allclose(s, 0.5 * masked.min(axis=1))
