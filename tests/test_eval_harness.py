"""Tests for the evaluation harness, leaderboard, tables and sweeps."""

import pytest

from repro.core import KnobConfig
from repro.eval import (
    Leaderboard,
    compare_algorithms,
    format_table,
    run_algorithm,
    speedup_table,
    sweep_parameter,
)
from repro.eval.harness import RunRecord
from repro.eval.sweeps import series
from repro.eval.tables import format_speedup_rows


@pytest.fixture(scope="module")
def data():
    from repro.datasets import make_blobs

    X, _ = make_blobs(300, 4, 5, seed=51)
    return X


class TestRunAlgorithm:
    def test_basic_record(self, data):
        record = run_algorithm("lloyd", data, 5, repeats=2, max_iter=5)
        assert record.algorithm == "lloyd"
        assert record.repeats == 2
        assert record.n == 300 and record.d == 4 and record.k == 5
        assert record.total_time > 0
        assert record.distance_computations > 0

    def test_accepts_knob_config(self, data):
        record = run_algorithm(KnobConfig(bound="hamerly"), data, 5, repeats=1, max_iter=5)
        assert record.algorithm == "hamerly"

    def test_accepts_factory(self, data):
        from repro.core.yinyang import YinyangKMeans

        record = run_algorithm(lambda: YinyangKMeans(t=2), data, 5, repeats=1, max_iter=5)
        assert record.algorithm == "yinyang"

    def test_as_dict_json_safe(self, data):
        import json

        record = run_algorithm("lloyd", data, 3, repeats=1, max_iter=3)
        json.dumps(record.as_dict())


class TestCompareAlgorithms:
    def test_shared_initialization_gives_equal_sse(self, data):
        records = compare_algorithms(
            ["lloyd", "elkan", "yinyang"], data, 6, repeats=2, max_iter=30
        )
        sses = [record.sse for record in records]
        assert max(sses) - min(sses) < 1e-6 * (1 + sses[0])

    def test_record_per_spec(self, data):
        records = compare_algorithms(["lloyd", "hamerly"], data, 4, repeats=1, max_iter=3)
        assert [r.algorithm for r in records] == ["lloyd", "hamerly"]


class TestSpeedupTable:
    def test_baseline_is_one(self, data):
        records = compare_algorithms(["lloyd", "elkan"], data, 5, repeats=1, max_iter=5)
        table = speedup_table(records)
        assert table["lloyd"]["time"] == pytest.approx(1.0)
        assert table["lloyd"]["work"] == pytest.approx(1.0)

    def test_elkan_does_less_work(self, data):
        records = compare_algorithms(["lloyd", "elkan"], data, 8, repeats=1, max_iter=10)
        table = speedup_table(records)
        assert table["elkan"]["work"] > 1.0

    def test_missing_baseline_raises(self, data):
        records = compare_algorithms(["elkan"], data, 5, repeats=1, max_iter=3)
        with pytest.raises(KeyError, match="baseline"):
            speedup_table(records)

    def test_rows_formatting(self, data):
        records = compare_algorithms(["lloyd", "elkan"], data, 5, repeats=1, max_iter=3)
        rows = format_speedup_rows(speedup_table(records), order=["lloyd", "elkan"])
        assert rows[0][0] == "lloyd"
        assert len(rows) == 2


def _record(name, time, pruning=0.5):
    return RunRecord(
        algorithm=name, n=10, d=2, k=2, repeats=1,
        total_time=time, assignment_time=time, refinement_time=0.0,
        setup_time=0.0, sse=1.0, n_iter=1.0, pruning_ratio=pruning,
        distance_computations=10, point_accesses=1, node_accesses=0,
        bound_accesses=0, bound_updates=0, footprint_floats=1,
    )


class TestLeaderboard:
    def test_top1_counting(self):
        board = Leaderboard()
        board.add_task([_record("a", 1.0), _record("b", 2.0)])
        board.add_task([_record("a", 3.0), _record("b", 2.0)])
        board.add_task([_record("a", 1.0), _record("b", 2.0)])
        assert board.top1["a"] == 2
        assert board.top1["b"] == 1
        assert board.top1_share()["a"] == pytest.approx(2 / 3)

    def test_top3_includes_top1(self):
        board = Leaderboard()
        board.add_task([_record(n, t) for n, t in [("a", 1), ("b", 2), ("c", 3), ("d", 4)]])
        assert board.top3 == {"a": 1, "b": 1, "c": 1}

    def test_descending_metric(self):
        board = Leaderboard(metric="pruning_ratio", ascending=False)
        board.add_task([_record("a", 1.0, pruning=0.9), _record("b", 1.0, pruning=0.1)])
        assert board.top1 == {"a": 1}

    def test_empty_task_rejected(self):
        with pytest.raises(ValueError):
            Leaderboard().add_task([])

    def test_ranking_retrieval(self):
        board = Leaderboard()
        board.add_task([_record("b", 2.0), _record("a", 1.0)])
        assert board.ranking_of(0) == ["a", "b"]


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "value"], [["x", 1.5], ["longer", 22.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_handles_nan(self):
        text = format_table(["v"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]


class TestSweeps:
    def test_sweep_and_series(self, data):
        def make_task(n):
            return data[:n], 4

        sweep = sweep_parameter([100, 200], make_task, ["lloyd"], repeats=1, max_iter=3)
        assert set(sweep) == {100, 200}
        points = series(sweep, "lloyd", "distance_computations")
        assert points[0][1] < points[1][1]  # more data, more distances
