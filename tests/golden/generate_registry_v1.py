"""Regenerate the committed registry-v1 golden artifact.

Version 1 of the model registry stored the centroid payload *inline*
(base64 of the raw little-endian float64 bytes) with flat metadata fields
on the manifest record.  The current reader must keep loading such
records transparently (mirroring the analysis baseline's v1→v2
migration); ``tests/test_serve.py::TestRegistrySchemaEvolution`` pins
that against this artifact.

Run from the repo root::

    PYTHONPATH=src python tests/golden/generate_registry_v1.py
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

import numpy as np

from repro.exec.checkpoint import array_crc

OUT_DIR = Path(__file__).resolve().parent / "registry_v1"

#: the deterministic toy model the artifact freezes (k=3, d=4)
CENTROIDS = np.array(
    [
        [0.0, 1.0, 2.0, 3.0],
        [10.0, 11.0, 12.0, 13.0],
        [-5.0, 0.5, 0.25, 8.0],
    ],
    dtype=np.float64,
)


def main() -> None:
    payload = base64.b64encode(
        np.ascontiguousarray(CENTROIDS).astype("<f8").tobytes()
    ).decode("ascii")
    record = {
        "registry_version": 1,
        "key": "v1golden00000001",
        "kind": "model",
        "created": 1700000000.0,
        "algorithm": "lloyd",
        "n": 60,
        "d": 4,
        "k": 3,
        "seed": 0,
        "sse": 42.5,
        "dataset": "toy",
        "centroids": payload,
        "centroids_crc": array_crc(CENTROIDS),
        "centroids_shape": [3, 4],
    }
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    manifest = OUT_DIR / "manifest.jsonl"
    manifest.write_text(json.dumps(record, sort_keys=True) + "\n")
    print(f"wrote {manifest}")


if __name__ == "__main__":
    main()
