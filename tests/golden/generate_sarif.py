"""Regenerate the golden SARIF document for tests/test_analysis_sarif.py.

Run from the repo root after a deliberate SARIF format change:

    PYTHONPATH=src python tests/golden/generate_sarif.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.analysis import format_findings_sarif  # noqa: E402

from test_analysis_sarif import GOLDEN, fixed_report  # noqa: E402


def main() -> None:
    GOLDEN.write_text(format_findings_sarif(fixed_report()) + "\n")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    main()
