"""Regenerate the golden trace files under ``tests/golden/``.

Run from the repo root:

    PYTHONPATH=src python tests/golden/generate_traces.py

Traces are captured from the **reference** backend only — it is the
ground truth for counter semantics (``docs/backends.md``) — and
``tests/test_golden_traces.py`` replays both backends against them.
Regenerating is only legitimate when a deliberate, reviewed change to an
algorithm's trajectory or counter charging lands; a diff in these files
is a behavioral change, not noise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))

from tests.trace_utils import (  # noqa: E402 (path bootstrap above)
    GOLDEN_ALGORITHMS,
    GOLDEN_SEEDS,
    capture_trace,
    golden_path,
    golden_task,
    traced_algorithm,
)


def main() -> int:
    for seed in GOLDEN_SEEDS:
        X, k, C0, max_iter = golden_task(seed)
        for name in GOLDEN_ALGORITHMS:
            algorithm = traced_algorithm(name, "reference")
            trace = capture_trace(algorithm, X, k, C0, max_iter)
            path = golden_path(name, seed)
            path.write_text(json.dumps(trace, indent=1) + "\n")
            print(
                f"wrote {path.relative_to(ROOT)}: "
                f"{trace['n_iter']} iterations, converged={trace['converged']}"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
