"""Tests for the CI benchmark-regression diff (benchmarks/bench_diff.py)."""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parents[1] / "benchmarks"
sys.path.insert(0, str(BENCHMARKS))

from bench_diff import diff_reports, main  # noqa: E402


def _report(**speedups):
    algorithms = {}
    for name, spec in speedups.items():
        entry = {"speedup": spec} if isinstance(spec, (int, float)) else dict(spec)
        algorithms[name] = entry
    return {"algorithms": algorithms}


class TestDiffReports:
    def test_within_tolerance_passes(self):
        table, regressions = diff_reports(
            _report(lloyd=2.6), _report(lloyd=2.2)
        )
        assert regressions == []
        assert "lloyd" in table and "ok" in table

    def test_gated_regression_detected(self):
        table, regressions = diff_reports(
            _report(lloyd=3.0), _report(lloyd=2.0)
        )
        assert len(regressions) == 1
        assert "lloyd" in regressions[0]
        assert "3.00x -> 2.00x" in regressions[0]
        assert "REGRESSED" in table

    def test_ungated_regression_reported_not_failed(self):
        previous = _report(sharded_lloyd={"speedup": 2.0, "gated": False})
        current = _report(sharded_lloyd={"speedup": 0.3, "gated": False})
        table, regressions = diff_reports(previous, current)
        assert regressions == []
        assert "ok (ungated)" in table

    def test_explicitly_gated_entry_enforced(self):
        previous = _report(
            serve_predict={"speedup": 11.0, "min_speedup": 5.0, "gated": True}
        )
        current = _report(
            serve_predict={"speedup": 6.0, "min_speedup": 5.0, "gated": True}
        )
        _, regressions = diff_reports(previous, current)
        assert len(regressions) == 1

    def test_added_and_removed_entries_reported(self):
        table, regressions = diff_reports(
            _report(lloyd=2.5, old_entry=4.0), _report(lloyd=2.5, new_entry=3.0)
        )
        assert regressions == []
        assert "added" in table and "removed" in table

    def test_custom_tolerance(self):
        previous, current = _report(lloyd=2.0), _report(lloyd=1.8)
        assert diff_reports(previous, current, tolerance=0.2)[1] == []
        assert len(diff_reports(previous, current, tolerance=0.05)[1]) == 1

    def test_improvement_never_regresses(self):
        _, regressions = diff_reports(_report(lloyd=2.0), _report(lloyd=9.0))
        assert regressions == []


class TestIpcDiff:
    """The ``ipc_bytes_per_iter`` table: hardware-independent, so it is
    enforced even for entries whose wall-clock gate is off."""

    def _entry(self, speedup, ipc=None, gated=False):
        entry = {"speedup": speedup, "gated": gated}
        if ipc is not None:
            entry["ipc_bytes_per_iter"] = ipc
        return entry

    def test_ipc_growth_fails_even_ungated(self):
        previous = _report(sharded_lloyd=self._entry(0.8, ipc=6000))
        current = _report(sharded_lloyd=self._entry(0.8, ipc=200000))
        table, regressions = diff_reports(previous, current)
        assert len(regressions) == 1
        assert "ipc bytes/iter grew 6000 -> 200000" in regressions[0]
        assert "ipc bytes/iter" in table

    def test_ipc_within_tolerance_passes(self):
        previous = _report(sharded_lloyd=self._entry(0.8, ipc=6000))
        current = _report(sharded_lloyd=self._entry(0.8, ipc=6500))
        table, regressions = diff_reports(previous, current)
        assert regressions == []
        assert "ipc bytes/iter" in table

    def test_ipc_shrink_never_regresses(self):
        previous = _report(sharded_lloyd=self._entry(0.8, ipc=200000))
        current = _report(sharded_lloyd=self._entry(0.8, ipc=6000))
        assert diff_reports(previous, current)[1] == []

    def test_missing_on_previous_side_tolerated(self):
        # Pre-data-plane baseline: the old report has no ipc fields.
        previous = _report(sharded_lloyd=self._entry(0.8))
        current = _report(sharded_lloyd=self._entry(0.8, ipc=6000))
        table, regressions = diff_reports(previous, current)
        assert regressions == []
        assert "added" in table

    def test_missing_on_current_side_tolerated(self):
        previous = _report(sharded_lloyd=self._entry(0.8, ipc=6000))
        current = _report(sharded_lloyd=self._entry(0.8))
        table, regressions = diff_reports(previous, current)
        assert regressions == []
        assert "removed" in table

    def test_no_ipc_entries_no_table(self):
        table, _ = diff_reports(_report(lloyd=2.0), _report(lloyd=2.0))
        assert "ipc bytes/iter" not in table


class TestMain:
    def _write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    def test_exit_zero_on_clean_diff(self, tmp_path, capsys):
        prev = self._write(tmp_path, "prev.json", _report(lloyd=2.5))
        curr = self._write(tmp_path, "curr.json", _report(lloyd=2.6))
        assert main([prev, curr]) == 0
        assert "no gated regressions" in capsys.readouterr().out

    def test_exit_one_with_readable_table(self, tmp_path, capsys):
        prev = self._write(tmp_path, "prev.json", _report(lloyd=4.0))
        curr = self._write(tmp_path, "curr.json", _report(lloyd=2.0))
        assert main([prev, curr]) == 1
        captured = capsys.readouterr()
        assert "algorithm" in captured.out  # the table header
        assert "benchmark regressions" in captured.err

    def test_current_repo_report_self_diff_is_clean(self, capsys):
        bench = BENCHMARKS.parent / "BENCH_backends.json"
        assert main([str(bench), str(bench)]) == 0
        assert "serve_predict" in capsys.readouterr().out
