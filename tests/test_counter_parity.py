"""Counter parity: paths that bypassed instrumentation now charge counters.

Before the ``repro.analysis`` cleanup, several index build/query phases
computed distances through raw ``np.linalg.norm`` and reported zero
``distance_computations`` (e.g. the kd-tree leaf-radius scans).  These
tests pin the new behavior — nonzero, documented counts — and prove the
routing through :mod:`repro.common.distance` changed *only* the counters,
never the clustering results.
"""

import numpy as np
import pytest

from repro.core import make_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import make_blobs
from repro.indexes import INDEX_CLASSES, build_index
from repro.instrumentation.counters import OpCounters

ALL_INDEXES = sorted(INDEX_CLASSES)


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(300, 4, 5, seed=11)
    return X


class TestBuildPhaseCharges:
    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_every_index_build_counts_distances(self, name, data):
        # Previously the kd-tree reported zero here: its coordinate splits
        # need no distances, but the leaf-radius scans and internal pivot
        # gaps it shares with every other tree do — one per point and one
        # per child (Definition 1 node metadata).
        tree = build_index(name, data)
        assert tree.counters.distance_computations > 0

    def test_kdtree_radius_scan_count_documented(self, data):
        # Leaf radii: one distance per point; internal pivot gaps: one per
        # child node.  Both lower-bound the build count.
        tree = build_index("kd-tree", data)
        n_internal_children = sum(
            len(node.children) for node in tree.root.iter_subtree()
            if not node.is_leaf
        )
        expected = len(data) + n_internal_children
        assert tree.counters.distance_computations == expected


class TestQueryPhaseCharges:
    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_range_search_counts_distances(self, name, data):
        tree = build_index(name, data)
        counters = OpCounters()
        hits = tree.range_search(data.mean(axis=0), 2.0, counters)
        assert counters.distance_computations > 0
        assert counters.node_accesses > 0
        # The counters are observational: same hits with or without them.
        assert sorted(hits) == sorted(tree.range_search(data.mean(axis=0), 2.0))

    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_knn_search_counts_distances(self, name, data):
        tree = build_index(name, data)
        counters = OpCounters()
        neighbors = tree.knn_search(data[0], 5, counters)
        assert len(neighbors) == 5
        assert counters.distance_computations > 0


class TestResultsUnchanged:
    """Routing through the instrumented kernels is bit-identical math."""

    K = 5

    @pytest.fixture(scope="class")
    def shared_init(self, data):
        return init_kmeans_plus_plus(data, self.K, seed=2)

    @pytest.mark.parametrize("index_name", ["kd-tree", "ball-tree"])
    def test_index_kmeans_matches_lloyd(self, index_name, data, shared_init):
        lloyd = make_algorithm("lloyd").fit(
            data, self.K, initial_centroids=shared_init.copy(), max_iter=10
        )
        indexed = make_algorithm("index", index=index_name).fit(
            data, self.K, initial_centroids=shared_init.copy(), max_iter=10
        )
        np.testing.assert_array_equal(indexed.labels, lloyd.labels)
        np.testing.assert_allclose(indexed.centroids, lloyd.centroids)
        assert indexed.counters.distance_computations > 0

    def test_lloyd_count_pins_drift_convention(self, data, shared_init):
        # The drift convention (docs/static_analysis.md): centroid drift is
        # bound-maintenance bookkeeping, NOT a charged distance — so Lloyd's
        # count stays exactly n*k per iteration.
        result = make_algorithm("lloyd").fit(
            data, self.K, initial_centroids=shared_init.copy(), max_iter=10
        )
        expected = len(data) * self.K * result.n_iter
        assert result.counters.distance_computations == expected
