"""Tests for knob configurations and the algorithm registry."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.core import ALGORITHMS, KMeans, KnobConfig, build_algorithm, make_algorithm
from repro.core.knobs import SELECTION_POOL, configuration_pool
from repro.core.index_kmeans import IndexKMeans
from repro.core.unik import UniKKMeans
from repro.core.yinyang import YinyangKMeans


class TestKnobConfig:
    def test_defaults(self):
        config = KnobConfig()
        assert config.bound == "yinyang"
        assert config.index == "none"

    def test_rejects_unknown_bound(self):
        with pytest.raises(ConfigurationError, match="bound knob"):
            KnobConfig(bound="magic")

    def test_rejects_unknown_index(self):
        with pytest.raises(ConfigurationError, match="index knob"):
            KnobConfig(index="r-tree")

    def test_labels(self):
        assert KnobConfig(bound="hamerly").label == "hamerly"
        assert KnobConfig(index="pure").label == "index-ball-tree"
        assert KnobConfig(index="single").label == "unik-single"

    def test_frozen(self):
        config = KnobConfig()
        with pytest.raises(AttributeError):
            config.bound = "elkan"

    def test_hashable_for_dedup(self):
        assert len({KnobConfig(), KnobConfig(), KnobConfig(bound="heap")}) == 2


class TestBuildAlgorithm:
    def test_sequential(self):
        assert isinstance(build_algorithm(KnobConfig(bound="yinyang")), YinyangKMeans)

    def test_pure_index(self):
        assert isinstance(build_algorithm(KnobConfig(index="pure")), IndexKMeans)

    def test_unik_traversals(self):
        for traversal in ["single", "multiple", "adaptive"]:
            algo = build_algorithm(KnobConfig(index=traversal))
            assert isinstance(algo, UniKKMeans)
            assert algo.traversal == traversal


class TestConfigurationPool:
    def test_selective_pool_contents(self):
        labels = {config.label for config in configuration_pool(selective=True)}
        assert set(SELECTION_POOL) <= labels
        assert "index-ball-tree" in labels
        assert "elkan" not in labels

    def test_full_pool_superset(self):
        full = {config.label for config in configuration_pool(selective=False)}
        selective = {config.label for config in configuration_pool(selective=True)}
        assert selective <= full
        assert "elkan" in full


class TestRegistry:
    def test_algorithm_roster(self):
        # 17 exact methods (incl. the discovered Sphere hybrid) + 2
        # approximate extensions.
        assert len(ALGORITHMS) == 19
        from repro.core import EXACT_ALGORITHMS

        assert len(EXACT_ALGORITHMS) == 17
        assert "sphere" in EXACT_ALGORITHMS
        assert "minibatch" not in EXACT_ALGORITHMS

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            make_algorithm("super-kmeans")

    def test_kwargs_forwarded(self):
        algo = make_algorithm("unik", traversal="multiple")
        assert algo.traversal == "multiple"


class TestKMeansFacade:
    def test_fit_predict_cycle(self, blobs_small):
        model = KMeans(k=4, algorithm="hamerly", seed=0, max_iter=20)
        result = model.fit(blobs_small)
        assert model.result_ is result
        predictions = model.predict(blobs_small[:10])
        np.testing.assert_array_equal(predictions, result.labels[:10])

    def test_predict_before_fit(self, blobs_small):
        with pytest.raises(ConfigurationError, match="before fit"):
            KMeans(k=3).predict(blobs_small)

    def test_explicit_initial_centroids(self, blobs_small, centroids_factory):
        C0 = centroids_factory(blobs_small, 3)
        result = KMeans(k=3, algorithm="lloyd").fit(blobs_small, initial_centroids=C0)
        assert result.n_iter >= 1
