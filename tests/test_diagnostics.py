"""Tests for the diagnostics package — and, through it, the strongest
soundness checks in the suite: every stored bound of every bound-based
method is audited against brute force on every iteration."""

import pytest

from repro.core import make_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import make_blobs
from repro.diagnostics import (
    audit_algorithm,
    compare_trajectories,
    record_trajectory,
)
from repro.diagnostics.bound_audit import BoundAudit

BOUNDED_METHODS = [
    "elkan", "hamerly", "drake", "yinyang", "regroup",
    "annular", "exponion", "drift", "vector", "sphere",
]


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(350, 5, 6, seed=81)
    return X


class TestBoundAudit:
    @pytest.mark.parametrize("name", BOUNDED_METHODS)
    @pytest.mark.parametrize("k", [4, 17])
    def test_no_violations(self, name, k, data):
        audit = audit_algorithm(make_algorithm(name), data, k, max_iter=20)
        assert audit.iterations_audited > 0
        assert audit.ok, audit.violations[:5]

    def test_detects_planted_violation(self, data):
        # Corrupt Hamerly's lower bound mid-run and confirm the audit sees it.
        algorithm = make_algorithm("hamerly")
        original = algorithm._update_bounds

        def corrupt(drifts):
            original(drifts)
            algorithm._lb += 1e6  # blatantly unsound

        algorithm._update_bounds = corrupt
        audit = BoundAudit()
        hooked = algorithm._update_bounds

        def hooked_with_audit(drifts):
            hooked(drifts)
            audit.check(algorithm, 1)

        algorithm._update_bounds = hooked_with_audit
        algorithm.fit(data, 5, seed=0, max_iter=3)
        assert not audit.ok
        assert any(v.kind == "global-lb" for v in audit.violations)

    def test_detects_bad_upper_bound(self, data):
        algorithm = make_algorithm("hamerly")
        algorithm.fit(data, 5, seed=0, max_iter=5)
        algorithm._ub[:] = 0.0  # claim every point sits on its centroid
        audit = BoundAudit()
        audit.check(algorithm, 99)
        assert any(v.kind == "ub" for v in audit.violations)


class TestTrajectory:
    def test_recording_shape(self, data):
        trajectory = record_trajectory(
            make_algorithm("lloyd"), data, 5, seed=0, max_iter=10
        )
        assert trajectory.n_iter >= 1
        assert trajectory.labels[0].shape == (len(data),)
        assert trajectory.centroids[0].shape == (5, data.shape[1])

    @pytest.mark.parametrize("name", ["elkan", "yinyang", "unik", "index", "heap"])
    def test_trajectories_match_lloyd_exactly(self, name, data, centroids_factory):
        C0 = centroids_factory(data, 8)
        base = record_trajectory(
            make_algorithm("lloyd"), data, 8, initial_centroids=C0, max_iter=40
        )
        other = record_trajectory(
            make_algorithm(name), data, 8, initial_centroids=C0, max_iter=40
        )
        divergence = compare_trajectories(base, other)
        assert divergence is None, divergence

    def test_divergence_located(self, data):
        C0 = init_kmeans_plus_plus(data, 6, seed=0)
        C1 = init_kmeans_plus_plus(data, 6, seed=1)
        a = record_trajectory(
            make_algorithm("lloyd"), data, 6, initial_centroids=C0, max_iter=15
        )
        b = record_trajectory(
            make_algorithm("lloyd"), data, 6, initial_centroids=C1, max_iter=15
        )
        divergence = compare_trajectories(a, b)
        assert divergence is not None
        assert divergence.iteration == 0

    def test_length_divergence(self, data):
        C0 = init_kmeans_plus_plus(data, 6, seed=0)
        long = record_trajectory(
            make_algorithm("lloyd"), data, 6, initial_centroids=C0, max_iter=40
        )
        short = record_trajectory(
            make_algorithm("lloyd"), data, 6, initial_centroids=C0, max_iter=2
        )
        divergence = compare_trajectories(long, short)
        if long.n_iter > 2:
            assert divergence is not None
            assert divergence.kind == "length"
