"""Trace capture shared by the golden-trace generator and regression tests.

A *trace* is the full observable trajectory of one clustering run: the
label vector after every assignment pass, the per-iteration counter
deltas, and the final centroids/SSE.  Golden traces are captured once from
the reference backend (the ground truth for counter semantics, see
``docs/backends.md``) and committed under ``tests/golden/``; the
regression test replays **both** backends against them, so a refactor
that silently changes a convergence path — even one that still reaches
the same fixed point — fails loudly.

Everything is serialized as plain JSON.  Python floats round-trip through
``json`` via shortest-repr, so float comparisons against a golden file
are bit-exact, not approximate.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Tuple, Type

import numpy as np

from repro.core import ALGORITHMS, VECTORIZED_ALGORITHMS
from repro.core.base import KMeansAlgorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import make_uniform

#: the algorithms with golden traces (= everything with a vectorized backend)
GOLDEN_ALGORITHMS = ("elkan", "hamerly", "yinyang", "lloyd", "index")
#: the two fixed seeds each algorithm is traced on
GOLDEN_SEEDS = (0, 1)

GOLDEN_DIR = Path(__file__).parent / "golden"


def golden_task(seed: int) -> Tuple[np.ndarray, int, np.ndarray, int]:
    """The fixed task a golden trace is captured on: (X, k, C0, max_iter).

    Uniform data is deliberate: it is the pruning worst case, so runs
    take ~10 iterations to converge and the traces exercise many
    assignment passes (blobs converge in 2-3, which regresses nothing).
    """
    X = make_uniform(120, 4, seed=23)
    C0 = init_kmeans_plus_plus(X, 6, seed=seed)
    return X, 6, C0, 30


def golden_path(name: str, seed: int) -> Path:
    return GOLDEN_DIR / f"trace_{name}_seed{seed}.json"


def _algorithm_class(name: str, backend: str) -> Type[KMeansAlgorithm]:
    if backend == "reference":
        return ALGORITHMS[name]
    return VECTORIZED_ALGORITHMS[name]


def traced_class(cls: Type[KMeansAlgorithm]) -> Type[KMeansAlgorithm]:
    """Subclass that records a copy of the labels after every assignment."""

    class Traced(cls):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.trace_labels: List[np.ndarray] = []

        def _assign(self, iteration: int) -> None:
            super()._assign(iteration)
            self.trace_labels.append(self._labels.copy())

    Traced.__name__ = f"Traced{cls.__name__}"
    Traced.__qualname__ = Traced.__name__
    return Traced


def traced_algorithm(
    name: str, backend: str, array_backend: str = "numpy"
) -> KMeansAlgorithm:
    """Build the traced algorithm instance one matrix cell replays.

    The cell under test — (algorithm, execution backend, array backend) —
    is fixed *here*, once, and :func:`capture_trace` just runs whatever
    instance it is handed.  That keeps the replay helpers reusable across
    the conformance matrix: new cells configure an instance instead of
    re-deriving classes at every call site.
    """
    algorithm = traced_class(_algorithm_class(name, backend))()
    algorithm.array_backend = array_backend
    # The registry key, not ``algorithm.name`` (which can carry a variant
    # suffix, e.g. "index-ball-tree"): golden files are keyed by registry
    # name so replays on any backend compare against the same file.
    algorithm.trace_name = name
    return algorithm


def require_array_backend(name: str) -> None:
    """Skip (never silently pass) when an optional array backend is absent."""
    import pytest

    from repro.backend import BackendUnavailableError, backend_manager

    try:
        backend_manager.get(name)
    except BackendUnavailableError as exc:
        pytest.skip(f"array backend {name!r} unavailable: {exc.reason}")


def capture_trace(
    algorithm: KMeansAlgorithm,
    X: np.ndarray,
    k: int,
    initial_centroids: np.ndarray,
    max_iter: int,
) -> Dict[str, Any]:
    """Run one traced instance and serialize its trajectory to a JSON dict."""
    result = algorithm.fit(
        X, k, initial_centroids=initial_centroids, max_iter=max_iter
    )
    iterations = []
    for labels, stats in zip(algorithm.trace_labels, result.iteration_stats):
        iterations.append(
            {
                "labels": labels.tolist(),
                "changed": stats.changed,
                "distance_computations": stats.distance_computations,
                "point_accesses": stats.point_accesses,
                "node_accesses": stats.node_accesses,
                "bound_accesses": stats.bound_accesses,
                "bound_updates": stats.bound_updates,
            }
        )
    return {
        "algorithm": getattr(algorithm, "trace_name", algorithm.name),
        "n": result.n,
        "d": result.d,
        "k": result.k,
        "n_iter": result.n_iter,
        "converged": result.converged,
        "sse": result.sse,
        "final_centroids": result.centroids.tolist(),
        "iterations": iterations,
    }
