"""Tests for the branch-and-bound k-NN search over all six indexes."""

import numpy as np
import pytest

from repro.datasets import make_blobs
from repro.indexes import INDEX_CLASSES, build_index
from repro.instrumentation.counters import OpCounters

ALL_INDEXES = sorted(INDEX_CLASSES)


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(400, 4, 6, seed=121)
    return X


def brute_knn(X, query, k):
    dists = np.linalg.norm(X - query, axis=1)
    order = np.argsort(dists, kind="stable")
    return order[:k]


@pytest.mark.parametrize("name", ALL_INDEXES)
class TestKnnSearch:
    def test_matches_bruteforce(self, name, data):
        tree = build_index(name, data)
        rng = np.random.default_rng(0)
        for _ in range(5):
            query = data[int(rng.integers(0, len(data)))] + rng.normal(0, 0.3, 4)
            got = tree.knn_search(query, 7)
            want = brute_knn(data, query, 7)
            # Distances must agree exactly; index ties may reorder equals.
            np.testing.assert_allclose(
                np.linalg.norm(data[got] - query, axis=1),
                np.linalg.norm(data[want] - query, axis=1),
                atol=1e-12,
            )

    def test_k_one_is_nearest(self, name, data):
        tree = build_index(name, data)
        query = data.mean(axis=0)
        got = tree.knn_search(query, 1)
        assert got[0] == brute_knn(data, query, 1)[0]

    def test_k_clamped_to_n(self, name, data):
        tree = build_index(name, data[:10])
        got = tree.knn_search(data[0], 50)
        assert len(got) == 10

    def test_results_sorted_by_distance(self, name, data):
        tree = build_index(name, data)
        got = tree.knn_search(data[3], 9)
        dists = np.linalg.norm(data[got] - data[3], axis=1)
        assert (np.diff(dists) >= -1e-12).all()


class TestKnnPruning:
    def test_prunes_compared_to_bruteforce(self, data):
        tree = build_index("ball-tree", data)
        counters = OpCounters()
        tree.knn_search(data[0], 5, counters)
        # Branch-and-bound must not touch every point.
        assert counters.point_accesses < len(data)

    def test_rejects_zero_k(self, data):
        tree = build_index("ball-tree", data)
        with pytest.raises(ValueError):
            tree.knn_search(data[0], 0)
