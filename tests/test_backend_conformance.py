"""Differential conformance: the vectorized backend ≡ the reference backend.

The vectorized backend (``repro.core.vectorized``) promises *bit-identical*
trajectories: from the same initial centroids, every (algorithm, task) pair
must produce the same labels, the same centroids (exact float equality, not
approximate), the same iteration count, and the same counter totals — per
iteration, not just in aggregate.  The reference scalar implementations are
the ground truth for ``OpCounters`` semantics; a vectorized implementation
that computes the right clustering but charges different counters is a
conformance failure (it would silently change the paper's Table 3 metrics).

The perf test at the bottom enforces the point of the backend: on the
20k x 16 synthetic workload the vectorized backend must beat the reference
by at least 2x wall-clock, and the measurement is recorded to
``BENCH_backends.json`` at the repo root (the CI perf-smoke artifact).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.backend import (
    OPTIONAL_BACKENDS,
    TOLERANCE_RTOL,
    available_backends,
    backend_manager,
)
from repro.common.exceptions import BackendUnavailableError, ConfigurationError
from repro.core import (
    ACCELERATED_ALGORITHMS,
    BACKENDS,
    VECTORIZED_ALGORITHMS,
    KMeans,
    make_algorithm,
)
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import make_blobs, make_spatial, make_uniform

from tests.trace_utils import golden_path, golden_task, require_array_backend

VECTORIZED = sorted(VECTORIZED_ALGORITHMS)
MAX_ITER = 60

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_backends.json"

#: wall-clock advantage the vectorized backend must demonstrate (ISSUE 3)
MIN_SPEEDUP = 2.0


def _dataset(name: str) -> np.ndarray:
    if name == "blobs":
        X, _ = make_blobs(350, 6, 5, seed=11)
        return X
    if name == "spatial":
        return make_spatial(400, hotspots=12, seed=17)
    if name == "uniform":
        return make_uniform(250, 4, seed=19)
    raise AssertionError(name)


_DATASETS = {name: _dataset(name) for name in ("blobs", "spatial", "uniform")}


def _run_pair(name, X, k, seed, max_iter=MAX_ITER, **kwargs):
    C0 = init_kmeans_plus_plus(X, k, seed=seed)
    reference = make_algorithm(name, backend="reference", **kwargs).fit(
        X, k, initial_centroids=C0, max_iter=max_iter
    )
    vectorized = make_algorithm(name, backend="vectorized", **kwargs).fit(
        X, k, initial_centroids=C0, max_iter=max_iter
    )
    return reference, vectorized


def _assert_identical(reference, vectorized):
    """The full conformance contract, with per-field diagnostics."""
    __tracebackhide__ = True
    mismatched = np.count_nonzero(reference.labels != vectorized.labels)
    assert mismatched == 0, (
        f"{reference.algorithm}: {mismatched} label(s) diverge between backends"
    )
    # Exact equality, not allclose: the backend contract is bit-identity.
    assert np.array_equal(reference.centroids, vectorized.centroids), (
        f"{reference.algorithm}: centroids diverge by up to "
        f"{np.abs(reference.centroids - vectorized.centroids).max():.3e}"
    )
    assert reference.n_iter == vectorized.n_iter
    assert reference.converged == vectorized.converged
    assert reference.sse == vectorized.sse
    assert reference.counters == vectorized.counters, (
        f"{reference.algorithm}: counter totals diverge:\n"
        f"  reference:  {reference.counters.as_dict()}\n"
        f"  vectorized: {vectorized.counters.as_dict()}"
    )
    assert reference.footprint_floats == vectorized.footprint_floats
    assert len(reference.iteration_stats) == len(vectorized.iteration_stats)
    for ref_it, vec_it in zip(reference.iteration_stats, vectorized.iteration_stats):
        for field in (
            "distance_computations",
            "point_accesses",
            "node_accesses",
            "bound_accesses",
            "bound_updates",
            "changed",
        ):
            assert getattr(ref_it, field) == getattr(vec_it, field), (
                f"{reference.algorithm} iteration {ref_it.iteration}: "
                f"{field} diverges ({getattr(ref_it, field)} vs "
                f"{getattr(vec_it, field)})"
            )


@pytest.mark.parametrize("name", VECTORIZED)
@pytest.mark.parametrize("dataset", sorted(_DATASETS))
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("k", [3, 16])
class TestBackendMatrix:
    """Every (algorithm, dataset, seed, k) cell run to convergence."""

    def test_identical_trajectory(self, name, dataset, seed, k):
        reference, vectorized = _run_pair(name, _DATASETS[dataset], k, seed)
        assert reference.converged, "matrix cell must converge within MAX_ITER"
        _assert_identical(reference, vectorized)


@pytest.mark.parametrize("name", VECTORIZED)
class TestBackendEdgeCases:
    def test_k_equals_one(self, name):
        X = _DATASETS["uniform"]
        reference, vectorized = _run_pair(name, X, 1, seed=0)
        _assert_identical(reference, vectorized)

    def test_duplicate_rows_1d(self, name):
        rng = np.random.default_rng(7)
        X = np.repeat(rng.normal(size=(40, 1)), 4, axis=0)
        reference, vectorized = _run_pair(name, X, 5, seed=2)
        _assert_identical(reference, vectorized)

    def test_k_exceeds_cluster_structure(self, name):
        reference, vectorized = _run_pair(name, _DATASETS["blobs"], 25, seed=3)
        _assert_identical(reference, vectorized)

    def test_iteration_cap(self, name):
        # Truncated runs must agree too — parity cannot rely on convergence.
        reference, vectorized = _run_pair(
            name, _DATASETS["spatial"], 12, seed=0, max_iter=3
        )
        assert not reference.converged
        _assert_identical(reference, vectorized)


class TestAlgorithmKnobs:
    """Constructor knobs must conform too, not just the defaults."""

    @pytest.mark.parametrize(
        "kwargs",
        [{"use_inter": False}, {"use_drift": False}],
        ids=["no-inter", "no-drift"],
    )
    def test_elkan_ablations(self, kwargs):
        reference, vectorized = _run_pair(
            "elkan", _DATASETS["blobs"], 8, seed=1, **kwargs
        )
        _assert_identical(reference, vectorized)

    @pytest.mark.parametrize("t", [1, 2, 5])
    def test_yinyang_group_counts(self, t):
        reference, vectorized = _run_pair(
            "yinyang", _DATASETS["blobs"], 10, seed=1, t=t
        )
        _assert_identical(reference, vectorized)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"index": "kd-tree"},  # exercises the hyperplane corner filter
            {"index": "m-tree"},
            {"index": "cover-tree"},
            {"index": "ball-tree", "capacity": 8},
        ],
        ids=["kd-tree", "m-tree", "cover-tree", "small-capacity"],
    )
    def test_index_variants(self, kwargs):
        reference, vectorized = _run_pair(
            "index", _DATASETS["blobs"], 8, seed=1, **kwargs
        )
        _assert_identical(reference, vectorized)


class TestSeedingParity:
    """k-means++ seeding: both backends draw identical picks (docs/backends.md).

    The vectorized D² update is bit-identical per row to the scalar loop,
    so the probability vector handed to the RNG — and therefore every
    sampled centroid index — matches exactly under the same seed.
    """

    @pytest.mark.parametrize("dataset", sorted(_DATASETS))
    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("k", [2, 9])
    def test_seeding_picks_identical(self, dataset, seed, k):
        from repro.instrumentation.counters import OpCounters

        X = _DATASETS[dataset]
        ref_counters, vec_counters = OpCounters(), OpCounters()
        reference = init_kmeans_plus_plus(
            X, k, seed=seed, counters=ref_counters, backend="reference"
        )
        vectorized = init_kmeans_plus_plus(
            X, k, seed=seed, counters=vec_counters, backend="vectorized"
        )
        assert np.array_equal(reference, vectorized)
        assert ref_counters.snapshot() == vec_counters.snapshot()

    def test_seeding_duplicate_rows(self):
        # Degenerate D² mass (total can hit the uniform-fallback branch).
        rng = np.random.default_rng(3)
        X = np.repeat(rng.normal(size=(10, 2)), 6, axis=0)
        for seed in range(4):
            reference = init_kmeans_plus_plus(X, 5, seed=seed, backend="reference")
            vectorized = init_kmeans_plus_plus(X, 5, seed=seed, backend="vectorized")
            assert np.array_equal(reference, vectorized)

    def test_seeding_single_point_mass(self):
        # All points identical: every step takes the uniform-fallback branch.
        X = np.ones((30, 3))
        reference = init_kmeans_plus_plus(X, 3, seed=0, backend="reference")
        vectorized = init_kmeans_plus_plus(X, 3, seed=0, backend="vectorized")
        assert np.array_equal(reference, vectorized)

    def test_fit_threads_seeding_backend(self):
        # fit() without initial_centroids seeds on the algorithm's backend;
        # parity means the cross-backend trajectory still matches exactly.
        X = _DATASETS["blobs"]
        reference = make_algorithm("lloyd").fit(X, 6, seed=42, max_iter=MAX_ITER)
        vectorized = make_algorithm("lloyd", backend="vectorized").fit(
            X, 6, seed=42, max_iter=MAX_ITER
        )
        _assert_identical(reference, vectorized)


class TestRefinementKernels:
    """The shared scatter-add refinement (repro.core.refinement)."""

    def test_scatter_add_matches_add_at(self):
        # bincount-with-weights and np.add.at both accumulate sequentially
        # in element order, so from a zero base they agree bitwise — the
        # property the rescan refinement mode relies on.
        from repro.core.refinement import accumulate_cluster_sums

        rng = np.random.default_rng(11)
        for n, d, k in [(1000, 7, 9), (257, 1, 3), (64, 16, 64)]:
            X = rng.normal(size=(n, d)) * rng.lognormal(size=(n, 1))
            labels = rng.integers(0, k, size=n)
            expected = np.zeros((k, d))
            np.add.at(expected, labels, X)
            assert np.array_equal(accumulate_cluster_sums(X, labels, k), expected)

    def test_drifts_match_norm(self):
        from repro.core.refinement import centroid_drifts

        rng = np.random.default_rng(5)
        old = rng.normal(size=(8, 4))
        new = old + rng.normal(size=(8, 4)) * 0.1
        assert np.array_equal(
            centroid_drifts(new, old), np.linalg.norm(new - old, axis=1)
        )


class TestBackendSelection:
    def test_backend_recorded_in_extras(self):
        X = _DATASETS["uniform"]
        reference, vectorized = _run_pair("elkan", X, 4, seed=0, max_iter=5)
        assert reference.extras["backend"] == "reference"
        assert vectorized.extras["backend"] == "vectorized"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            make_algorithm("elkan", backend="gpu")

    def test_unvectorized_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="no vectorized implementation"):
            make_algorithm("unik", backend="vectorized")

    def test_facade_threads_backend(self):
        X = _DATASETS["uniform"]
        model = KMeans(k=4, algorithm="hamerly", backend="vectorized", seed=0)
        result = model.fit(X)
        assert result.extras["backend"] == "vectorized"

    def test_registry_exposes_backends(self):
        assert BACKENDS == ("reference", "vectorized")
        assert set(VECTORIZED_ALGORITHMS) >= {
            "lloyd", "elkan", "hamerly", "yinyang", "index",
        }


class TestArrayBackendMatrix:
    """Array-backend cells of the matrix (docs/array_backends.md).

    Two tiers: ``array_backend="numpy"`` is held to the full bit-identity
    contract against the reference backend (same ``_assert_identical`` as
    every other cell), while accelerator backends are held to the
    tolerance tier — identical labels, centroids within the per-dtype
    rtol, SSE gap bounded — and skip with the recorded reason when the
    library is absent.
    """

    @pytest.mark.parametrize("name", ACCELERATED_ALGORITHMS)
    @pytest.mark.parametrize("dataset", sorted(_DATASETS))
    def test_numpy_array_backend_bit_identical(self, name, dataset):
        X = _DATASETS[dataset]
        C0 = init_kmeans_plus_plus(X, 8, seed=0)
        reference = make_algorithm(name, backend="reference").fit(
            X, 8, initial_centroids=C0, max_iter=MAX_ITER
        )
        routed = make_algorithm(
            name, backend="vectorized", array_backend="numpy"
        ).fit(X, 8, initial_centroids=C0, max_iter=MAX_ITER)
        _assert_identical(reference, routed)
        assert routed.extras["array_backend"] == "numpy"

    @pytest.mark.parametrize("array_backend", OPTIONAL_BACKENDS)
    @pytest.mark.parametrize("name", ACCELERATED_ALGORITHMS)
    def test_accelerator_tolerance_tier(self, name, array_backend):
        require_array_backend(array_backend)
        X = _DATASETS["blobs"]
        C0 = init_kmeans_plus_plus(X, 8, seed=1)
        baseline = make_algorithm(name, backend="vectorized").fit(
            X, 8, initial_centroids=C0, max_iter=MAX_ITER
        )
        accelerated = make_algorithm(
            name, backend="vectorized", array_backend=array_backend
        ).fit(X, 8, initial_centroids=C0, max_iter=MAX_ITER)
        rtol = TOLERANCE_RTOL["float64"]
        assert accelerated.n_iter == baseline.n_iter
        assert accelerated.converged == baseline.converged
        assert np.array_equal(accelerated.labels, baseline.labels), (
            f"{name}/{array_backend}: labels diverge from the numpy backend"
        )
        np.testing.assert_allclose(
            accelerated.centroids, baseline.centroids, rtol=rtol, atol=0.0
        )
        assert abs(accelerated.sse - baseline.sse) <= rtol * baseline.sse
        # Counters measure the paper's cost model, not backend calls, so
        # they stay backend-invariant even on the tolerance tier.
        assert accelerated.counters == baseline.counters
        assert accelerated.extras["array_backend"] == array_backend


class TestShardedArrayBackend:
    """The shards=4 x array_backend='numpy' cell stays bit-identical."""

    def test_sharded_numpy_cell_replays_golden_trace(self):
        golden = json.loads(golden_path("lloyd", 0).read_text())
        X, k, C0, max_iter = golden_task(0)
        result = make_algorithm(
            "lloyd", backend="vectorized", array_backend="numpy", shards=4
        ).fit(X, k, initial_centroids=C0, max_iter=max_iter)
        assert result.n_iter == golden["n_iter"]
        assert result.converged == golden["converged"]
        assert result.sse == golden["sse"]
        assert result.centroids.tolist() == golden["final_centroids"]
        assert result.labels.tolist() == golden["iterations"][-1]["labels"]

    @pytest.mark.parametrize("name", ("lloyd", "elkan"))
    def test_sharded_numpy_cell_matches_single_process(self, name):
        X = _DATASETS["spatial"]
        C0 = init_kmeans_plus_plus(X, 9, seed=2)
        single = make_algorithm(name, backend="vectorized").fit(
            X, 9, initial_centroids=C0, max_iter=MAX_ITER
        )
        sharded = make_algorithm(
            name, backend="vectorized", array_backend="numpy", shards=4
        ).fit(X, 9, initial_centroids=C0, max_iter=MAX_ITER)
        assert np.array_equal(sharded.labels, single.labels)
        assert sharded.centroids.tobytes() == single.centroids.tobytes()
        assert sharded.n_iter == single.n_iter
        assert sharded.sse == single.sse
        assert sharded.counters == single.counters


class TestArrayBackendSelection:
    """Construction-time validation of the array-backend knob."""

    def test_numpy_default_recorded_in_extras(self):
        X = _DATASETS["uniform"]
        result = make_algorithm("elkan", backend="vectorized").fit(
            X, 4, initial_centroids=init_kmeans_plus_plus(X, 4, seed=0),
            max_iter=5,
        )
        assert result.extras["array_backend"] == "numpy"

    def test_unknown_array_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown array backend"):
            make_algorithm("lloyd", backend="vectorized", array_backend="jax")

    def test_unavailable_array_backend_classified(self):
        if "cupy" in available_backends():
            pytest.skip("cupy is installed here")
        with pytest.raises(BackendUnavailableError, match="not available"):
            make_algorithm("lloyd", backend="vectorized", array_backend="cupy")

    def test_accelerator_requires_vectorized_backend(self):
        name = next(
            (b for b in available_backends() if b != "numpy"), None
        )
        if name is None:
            pytest.skip("no accelerator array backend registered here")
        with pytest.raises(ConfigurationError, match="backend='vectorized'"):
            make_algorithm("lloyd", backend="reference", array_backend=name)

    def test_accelerator_rejects_sharding(self):
        name = next(
            (b for b in available_backends() if b != "numpy"), None
        )
        if name is None:
            pytest.skip("no accelerator array backend registered here")
        with pytest.raises(ConfigurationError, match="array_backend='numpy'"):
            make_algorithm(
                "lloyd", backend="vectorized", array_backend=name, shards=4
            )

    def test_numpy_array_backend_allows_sharding(self):
        algorithm = make_algorithm(
            "lloyd", backend="vectorized", array_backend="numpy", shards=2
        )
        assert algorithm is not None

    def test_facade_threads_array_backend(self):
        X = _DATASETS["uniform"]
        model = KMeans(
            k=4, algorithm="hamerly", backend="vectorized",
            array_backend="numpy", seed=0,
        )
        result = model.fit(X)
        assert result.extras["array_backend"] == "numpy"


class TestBackendPerformance:
    """The backend must be *worth it*: >= 2x on the 20k x 16 workload."""

    N, D, K, ITERS, COMPONENTS = 20_000, 16, 16, 5, 12

    def test_vectorized_beats_reference(self):
        from repro.indexes import INDEX_CLASSES

        X, _ = make_blobs(self.N, self.D, self.COMPONENTS, seed=5)
        C0 = init_kmeans_plus_plus(X, self.K, seed=0)
        # Shared prebuilt tree for the index entry: both backends run the
        # identical build code, so including it would dilute the traversal
        # comparison with a constant; fit() reuses a tree built over the
        # same X object (see IndexKMeans._setup).
        tree = INDEX_CLASSES["ball-tree"](X, capacity=30)
        per_algorithm_kwargs = {"index": {"tree": tree}}
        report = {
            "workload": {
                "n": self.N, "d": self.D, "k": self.K,
                "max_iter": self.ITERS, "dataset": "blobs(seed=5)",
            },
            "min_speedup": MIN_SPEEDUP,
            "algorithms": {},
        }
        failures = []
        for name in VECTORIZED:
            kwargs = per_algorithm_kwargs.get(name, {})
            times = {}
            for backend in BACKENDS:
                best = float("inf")
                for _ in range(3):  # best-of-3 to damp scheduler noise
                    algorithm = make_algorithm(name, backend=backend, **kwargs)
                    t0 = time.perf_counter()
                    result = algorithm.fit(
                        X, self.K, initial_centroids=C0, max_iter=self.ITERS
                    )
                    best = min(best, time.perf_counter() - t0)
                times[backend] = best
            self._record(report, failures, name, times)
        # k-means++ seeding is a vectorized hot path too (no fit involved).
        times = {}
        for backend in BACKENDS:
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                init_kmeans_plus_plus(X, self.K, seed=0, backend=backend)
                best = min(best, time.perf_counter() - t0)
            times[backend] = best
        self._record(report, failures, "kmeanspp_init", times)
        BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
        assert not failures, (
            "vectorized backend too slow on the 20k x 16 workload: "
            + "; ".join(failures)
            + f" (see {BENCH_PATH.name})"
        )

    @staticmethod
    def _record(report, failures, name, times):
        speedup = times["reference"] / times["vectorized"]
        report["algorithms"][name] = {
            "reference_s": round(times["reference"], 5),
            "vectorized_s": round(times["vectorized"], 5),
            "speedup": round(speedup, 2),
        }
        if speedup < MIN_SPEEDUP:
            failures.append(f"{name}: {speedup:.2f}x < {MIN_SPEEDUP}x")


#: wall-clock advantage shard-parallel assignment must demonstrate over the
#: single-process vectorized backend on the same workload — only meaningful
#: (and only asserted) with at least two cores to spread shards across.
SHARDED_MIN_SPEEDUP = 1.5


class TestShardedPerformance:
    """Shard-parallel assignment must beat single-process vectorized.

    Runs after :class:`TestBackendPerformance` (file order), which rewrites
    ``BENCH_backends.json`` wholesale; this test re-reads the report and
    adds ``sharded_lloyd`` / ``sharded_elkan`` entries.  The measurement
    always runs and is always recorded — with the host's core count — but
    the >= 1.5x floor is only asserted on multi-core hosts: on a single
    core the shards serialize and the fork/merge overhead is pure loss, so
    failing there would gate on hardware, not on a regression (the CI
    runners are multi-core, so the floor is enforced on every PR; see
    docs/sharding.md).
    """

    N, D, K, ITERS, COMPONENTS = 20_000, 16, 16, 5, 12

    def test_sharded_beats_single_process(self):
        import os

        from repro.exec.sharded import SHARDED_ALGORITHMS

        cores = os.cpu_count() or 1
        shards = min(4, max(2, cores))
        X, _ = make_blobs(self.N, self.D, self.COMPONENTS, seed=5)
        C0 = init_kmeans_plus_plus(X, self.K, seed=0)
        # What the PR 7 engine shipped per iteration: every shard's point
        # slice, re-pickled every round — one full point matrix in total.
        # The shm data plane publishes it once, so this is the honest
        # "before" for the ipc_bytes_per_iter comparison below.
        ipc_bytes_before = int(X.nbytes)
        report = json.loads(BENCH_PATH.read_text())
        failures = []
        for name in ("lloyd", "elkan"):
            single_s = self._best_of(
                lambda: make_algorithm(name, backend="vectorized").fit(
                    X, self.K, initial_centroids=C0, max_iter=self.ITERS
                )
            )
            last_extras = {}

            def sharded_fit():
                result = SHARDED_ALGORITHMS[name](
                    shards=shards, runner="process"
                ).fit(X, self.K, initial_centroids=C0, max_iter=self.ITERS)
                last_extras.update(result.extras)

            sharded_s = self._best_of(sharded_fit)
            ipc = last_extras["ipc"]
            speedup = single_s / sharded_s
            report["algorithms"][f"sharded_{name}"] = {
                "single_process_s": round(single_s, 5),
                "sharded_s": round(sharded_s, 5),
                "speedup": round(speedup, 2),
                "shards": shards,
                "cores": cores,
                "min_speedup": SHARDED_MIN_SPEEDUP,
                "gated": cores >= 2,
                "ipc_bytes_per_iter": int(ipc["bytes_per_iter"]),
                "ipc_bytes_per_iter_before": ipc_bytes_before,
                "ipc_setup_bytes": int(ipc["setup_bytes"]),
                "data_plane_bytes": int(ipc["data_plane_bytes"]),
                "spawned_processes": last_extras["pool"]["spawned_processes"],
            }
            # Hardware-independent and therefore always asserted: the
            # steady-state pipe traffic must exclude the point shard.
            if not 0 < ipc["bytes_per_iter"] < ipc_bytes_before:
                failures.append(
                    f"sharded_{name}: {ipc['bytes_per_iter']} ipc bytes/iter "
                    f"is not below the {ipc_bytes_before}-byte point matrix"
                )
            if cores >= 2 and speedup < SHARDED_MIN_SPEEDUP:
                failures.append(
                    f"sharded_{name}: {speedup:.2f}x < {SHARDED_MIN_SPEEDUP}x "
                    f"({shards} shards on {cores} cores)"
                )
        BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
        assert not failures, (
            "shard-parallel assignment too slow on the 20k x 16 workload: "
            + "; ".join(failures)
            + f" (see {BENCH_PATH.name})"
        )

    @staticmethod
    def _best_of(fit, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fit()
            best = min(best, time.perf_counter() - t0)
        return best


class TestArrayBackendPerformance:
    """Record per-array-backend timings to the BENCH report (ungated).

    Runs after the two gated perf tests above (file order), re-reads
    ``BENCH_backends.json`` and adds an ``array_backends`` section with one
    entry per backend registered in this process — at least ``numpy``; a
    CI runner with CPU torch installed records the torch cell too.  The
    section is deliberately *ungated*: accelerator wall-clock on tiny CPU
    workloads is dominated by transfer overhead, so the entries exist to
    track the trend, not to enforce a floor (docs/array_backends.md).
    """

    N, D, K, ITERS, COMPONENTS = 20_000, 16, 16, 5, 12

    def test_record_array_backend_timings(self):
        X, _ = make_blobs(self.N, self.D, self.COMPONENTS, seed=5)
        C0 = init_kmeans_plus_plus(X, self.K, seed=0)
        report = json.loads(BENCH_PATH.read_text())
        section = {}
        for backend_name in available_backends():
            entry = {"device": getattr(
                backend_manager.get(backend_name), "device", "cpu"
            )}
            for name in ("lloyd", "elkan"):
                best = float("inf")
                for _ in range(3):
                    algorithm = make_algorithm(
                        name, backend="vectorized",
                        array_backend=backend_name,
                    )
                    t0 = time.perf_counter()
                    result = algorithm.fit(
                        X, self.K, initial_centroids=C0, max_iter=self.ITERS
                    )
                    best = min(best, time.perf_counter() - t0)
                assert result.extras["array_backend"] == backend_name
                entry[f"{name}_s"] = round(best, 5)
            section[backend_name] = entry
        report["array_backends"] = section
        BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
        assert "numpy" in section


#: wall-clock advantage batched serving must demonstrate over a per-point
#: assignment loop on the 20k x 16 workload (ISSUE 9)
SERVE_MIN_SPEEDUP = 5.0


class TestServingPerformance:
    """Batched serving must beat a per-point assignment loop by >= 5x.

    Runs after the perf tests above (file order), re-reads
    ``BENCH_backends.json`` and adds a gated ``serve_predict`` entry under
    ``algorithms``.  The baseline is the obvious serving loop — one
    ``one_to_many_distances`` call plus argmin per query point — against
    :meth:`Predictor.predict` answering the same 20k queries in chunked
    one-to-many batches.  Both paths use counted exact kernels with
    first-index argmin, so the labels are asserted identical, not just the
    timing (docs/serving.md).
    """

    N, D, K, ITERS, COMPONENTS = 20_000, 16, 16, 5, 12

    def test_batched_predict_beats_per_point(self, tmp_path):
        from repro.common.distance import one_to_many_distances
        from repro.serve import ModelRegistry, Predictor

        X, _ = make_blobs(self.N, self.D, self.COMPONENTS, seed=5)
        C0 = init_kmeans_plus_plus(X, self.K, seed=0)
        result = make_algorithm("lloyd", backend="vectorized").fit(
            X, self.K, initial_centroids=C0, max_iter=self.ITERS
        )
        registry = ModelRegistry(tmp_path / "registry")
        predictor = Predictor(registry, registry.save_model(result))
        centroids = np.asarray(predictor.centroids)

        def per_point():
            return np.array([
                int(np.argmin(one_to_many_distances(x, centroids)))
                for x in X
            ])

        per_point_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            loop_labels = per_point()
            per_point_s = min(per_point_s, time.perf_counter() - t0)
        batched_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            batched_labels = predictor.predict(X)
            batched_s = min(batched_s, time.perf_counter() - t0)
        np.testing.assert_array_equal(batched_labels, loop_labels)

        speedup = per_point_s / batched_s
        report = json.loads(BENCH_PATH.read_text())
        report["algorithms"]["serve_predict"] = {
            "per_point_s": round(per_point_s, 5),
            "batched_s": round(batched_s, 5),
            "speedup": round(speedup, 2),
            "min_speedup": SERVE_MIN_SPEEDUP,
            "gated": True,
        }
        BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
        assert speedup >= SERVE_MIN_SPEEDUP, (
            f"serve_predict: {speedup:.2f}x < {SERVE_MIN_SPEEDUP}x on the "
            f"20k x 16 workload (see {BENCH_PATH.name})"
        )
