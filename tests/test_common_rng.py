"""Unit tests for RNG normalization."""

import numpy as np
import pytest

from repro.common.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int32(7)), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("42")


class TestSpawnRng:
    def test_child_independent_of_second_spawn(self):
        parent = ensure_rng(0)
        child1 = spawn_rng(parent)
        child2 = spawn_rng(parent)
        assert child1.integers(0, 10**9) != child2.integers(0, 10**9)

    def test_deterministic_given_parent_state(self):
        a = spawn_rng(ensure_rng(5)).integers(0, 10**9)
        b = spawn_rng(ensure_rng(5)).integers(0, 10**9)
        assert a == b
