"""Fault injection and end-to-end recovery tests.

Covers the acceptance scenario for the fault-tolerant runtime: a chaos
campaign with a hanging spec, a crashing spec, and a transiently-failing
spec completes every healthy cell, retries the transient one to success,
records the other two as ``FailedRun`` entries, and a resume of the same
campaign re-runs only the failed cells.  Successful records are
bit-identical (counters and SSE) to the serial harness.
"""

import warnings

import numpy as np
import pytest

from repro.common.exceptions import ReproError, TransientError, ValidationError
from repro.datasets import make_blobs
from repro.datasets.loaders import read_jsonl
from repro.eval.faults import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    InjectedFaultError,
    corrupt_jsonl_tail,
)
from repro.eval.harness import compare_algorithms
from repro.eval.logdb import EvaluationLog
from repro.eval.parallel import parallel_compare
from repro.eval.runtime import FailedRun, RunKey, is_failed_record
from repro.eval.sweeps import series, sweep_parameter

KEY = RunKey(algorithm="lloyd", dataset="toy", n=100, d=4, k=5, seed=0, max_iter=10)
OTHER = RunKey(algorithm="hamerly", dataset="toy", n=100, d=4, k=5, seed=0, max_iter=10)


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(120, 4, 4, seed=7)
    return X


class TestFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            Fault(kind="meteor")

    def test_bad_times_rejected(self):
        with pytest.raises(ValidationError):
            Fault(kind="transient", times=0)

    def test_matches_wildcard_algorithm_and_substring(self):
        assert Fault(kind="raise").matches(KEY)
        assert Fault(kind="raise", match="lloyd").matches(KEY)
        assert Fault(kind="raise", match="toy").matches(KEY)
        assert not Fault(kind="raise", match="elkan").matches(KEY)

    def test_triggers_respects_times(self):
        fault = Fault(kind="transient", times=2)
        assert fault.triggers(1) and fault.triggers(2) and not fault.triggers(3)
        always = Fault(kind="raise")
        assert always.triggers(99)


class TestFaultPlanParse:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse("transient:hamerly:2,hang:lloyd,kill:elkan,rate:0.1,seed:7")
        assert [f.kind for f in plan.faults] == ["transient", "hang", "kill"]
        assert plan.faults[0].match == "hamerly" and plan.faults[0].times == 2
        assert plan.rate == pytest.approx(0.1)
        assert plan.seed == 7

    def test_parse_delay_seconds(self):
        plan = FaultPlan.parse("delay:*:0.25")
        assert plan.faults[0].seconds == pytest.approx(0.25)

    def test_parse_empty_items_skipped(self):
        assert FaultPlan.parse("") == FaultPlan()
        assert FaultPlan.parse(" , ,") == FaultPlan()

    def test_parse_malformed_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan.parse("transient:hamerly:soon")
        with pytest.raises(ValidationError):
            FaultPlan.parse("meteor:lloyd")
        with pytest.raises(ValidationError):
            FaultPlan.parse("rate:lots")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan(rate=1.5)


class TestFaultPlanApply:
    def test_transient_then_clean(self):
        plan = FaultPlan(faults=(Fault(kind="transient", match="lloyd", times=1),))
        with pytest.raises(TransientError):
            plan.apply(KEY, attempt=1)
        plan.apply(KEY, attempt=2)  # second attempt passes

    def test_raise_is_not_transient(self):
        plan = FaultPlan(faults=(Fault(kind="raise", match="lloyd"),))
        with pytest.raises(InjectedFaultError):
            plan.apply(KEY, attempt=1)
        plan.apply(OTHER, attempt=1)  # unmatched key untouched

    def test_rate_draws_are_deterministic(self):
        plan = FaultPlan(rate=0.5, seed=3)
        draws = [plan.rate_triggers(KEY, a) for a in range(1, 30)]
        again = [plan.rate_triggers(KEY, a) for a in range(1, 30)]
        assert draws == again
        assert any(draws) and not all(draws)  # rate=0.5 hits some, not all

    def test_rate_zero_never_triggers(self):
        assert not FaultPlan().rate_triggers(KEY, 1)

    def test_corrupt_is_log_level_only(self):
        plan = FaultPlan(faults=(Fault(kind="corrupt"),))
        plan.apply(KEY, attempt=1)  # no-op inside workers
        assert plan.wants_log_corruption()
        assert not FaultPlan().wants_log_corruption()

    def test_all_kinds_are_parseable(self):
        for kind in FAULT_KINDS:
            plan = FaultPlan.parse(f"{kind}:lloyd")
            assert plan.faults[0].kind == kind


class TestCorruptJsonlTail:
    def test_truncates_and_reports_size(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n')
        size = corrupt_jsonl_tail(path, drop_bytes=5)
        assert size == path.stat().st_size
        assert path.read_text() == '{"a": 1}\n{"b"'


class TestChaosCampaign:
    """The acceptance scenario from the robustness issue."""

    PLAN = FaultPlan(faults=(
        Fault(kind="hang", match="elkan"),
        Fault(kind="kill", match="yinyang"),
        Fault(kind="transient", match="hamerly", times=1),
    ))
    SPECS = ["lloyd", "hamerly", "elkan", "yinyang"]

    def _run(self, X, log=None, resume=False, plan=PLAN):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return parallel_compare(
                self.SPECS, X, 4,
                repeats=1, max_iter=3, seed=0,
                timeout=15.0, retries=2,
                dataset="chaos", log=log, resume=resume, fault_plan=plan,
            )

    def test_chaos_sweep_completes_with_failures_recorded(self, data):
        results = self._run(data)
        by_algo = {getattr(r, "algorithm", None) or r.key.algorithm: r
                   for r in results}
        # Healthy spec and the retried-transient spec both succeed.
        assert not is_failed_record(by_algo["lloyd"])
        assert not is_failed_record(by_algo["hamerly"])
        # Hanging and killed specs degrade to FailedRun entries.
        assert isinstance(by_algo["elkan"], FailedRun)
        assert by_algo["elkan"].error_type == "RunTimeoutError"
        assert isinstance(by_algo["yinyang"], FailedRun)
        assert by_algo["yinyang"].error_type == "WorkerCrashError"

    def test_transient_spec_was_actually_retried(self, data):
        results = self._run(data)
        hamerly = next(r for r in results
                       if getattr(r, "algorithm", "") == "hamerly")
        assert not is_failed_record(hamerly)

    def test_survivors_bit_identical_to_serial_harness(self, data):
        serial = compare_algorithms(["lloyd", "hamerly"], data, 4,
                                    repeats=1, max_iter=3, seed=0)
        chaos = [r for r in self._run(data) if not is_failed_record(r)]
        by_algo = {r.algorithm: r for r in chaos}
        for reference in serial:
            survivor = by_algo[reference.algorithm]
            assert survivor.sse == reference.sse
            assert survivor.distance_computations == reference.distance_computations
            assert survivor.point_accesses == reference.point_accesses
            assert survivor.n_iter == reference.n_iter

    def test_resume_reruns_only_failed_cells(self, data, tmp_path):
        log_path = tmp_path / "campaign.jsonl"
        log = EvaluationLog(log_path)
        self._run(data, log=log)
        assert len(log.completed_keys()) == 2
        assert len(log.failed_keys()) == 2
        lines_before = len(read_jsonl(log_path))

        # Resume without faults: only elkan and yinyang re-run.
        log2 = EvaluationLog(log_path)
        results = self._run(data, log=log2, resume=True, plan=None)
        assert all(not is_failed_record(r) for r in results)
        by_algo = {r.algorithm: r for r in results}
        assert by_algo["lloyd"].extras.get("resumed") is True
        assert by_algo["hamerly"].extras.get("resumed") is True
        assert "resumed" not in by_algo["elkan"].extras
        assert "resumed" not in by_algo["yinyang"].extras
        # Exactly the two failed cells were re-run and appended.
        assert len(read_jsonl(log_path)) == lines_before + 2
        assert len(EvaluationLog(log_path).failed_keys()) == 0

    def test_on_failure_raise_still_logs_everything(self, data, tmp_path):
        log = EvaluationLog(tmp_path / "strict.jsonl")
        plan = FaultPlan(faults=(Fault(kind="raise", match="hamerly"),))
        with pytest.raises(ReproError):
            parallel_compare(
                ["lloyd", "hamerly"], data, 4,
                repeats=1, max_iter=3, seed=0, timeout=15.0,
                on_failure="raise", dataset="strict", log=log, fault_plan=plan,
            )
        assert len(log.completed_keys()) == 1
        assert len(log.failed_keys()) == 1


class TestCrashRecovery:
    def test_log_survives_truncated_tail(self, data, tmp_path):
        log_path = tmp_path / "crashy.jsonl"
        log = EvaluationLog(log_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel_compare(["lloyd", "hamerly"], data, 4, repeats=1,
                             max_iter=3, seed=0, dataset="crash", log=log)
        intact = len(read_jsonl(log_path))
        assert intact == 2

        corrupt_jsonl_tail(log_path, drop_bytes=9)
        with pytest.warns(RuntimeWarning, match="truncated"):
            recovered = EvaluationLog(log_path, truncated="quarantine")
        # One record lost to the crash artifact, the rest intact.
        assert len(recovered) == intact - 1
        assert (tmp_path / "crashy.jsonl.quarantine").exists()
        # The lost cell shows as incomplete, so a resume re-runs it.
        assert len(recovered.completed_keys()) == 1

    def test_recovered_log_accepts_new_appends(self, tmp_path):
        log_path = tmp_path / "recover.jsonl"
        log_path.write_text('{"algorithm": "lloyd", "x": 1}\n{"algorithm": "ham')
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            log = EvaluationLog(log_path, truncated="skip")
        log.add({"algorithm": "elkan", "x": 2})
        reloaded = read_jsonl(log_path, truncated="raise")
        assert [r["algorithm"] for r in reloaded] == ["lloyd", "elkan"]


class TestFaultTolerantSweep:
    def test_sweep_records_failures_and_series_skips_them(self, data):
        plan = FaultPlan(faults=(Fault(kind="raise", match="hamerly"),))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            sweep = sweep_parameter(
                [2, 3], lambda k: (data, k), ["lloyd", "hamerly"],
                repeats=1, max_iter=3, seed=0,
                timeout=15.0, fault_plan=plan,
            )
        assert len(series(sweep, "lloyd", "sse")) == 2
        assert series(sweep, "hamerly", "sse") == []

    def test_serial_sweep_unchanged_without_runtime_knobs(self, data):
        sweep = sweep_parameter(
            [2, 3], lambda k: (data, k), ["lloyd"],
            repeats=1, max_iter=3, seed=0,
        )
        assert len(series(sweep, "lloyd", "sse")) == 2


def test_injected_faults_do_not_perturb_results(data):
    """A delay fault changes timing only — counters and SSE stay identical."""
    plan = FaultPlan(faults=(Fault(kind="delay", match="lloyd", seconds=0.05),))
    delayed = parallel_compare(["lloyd"], data, 4, repeats=1, max_iter=3,
                               seed=0, fault_plan=plan)[0]
    serial = compare_algorithms(["lloyd"], data, 4, repeats=1, max_iter=3,
                                seed=0)[0]
    assert delayed.sse == serial.sse
    assert delayed.distance_computations == serial.distance_computations
    assert np.isfinite(delayed.total_time)


class TestShardScopedFaults:
    def test_parse_shard_and_iter_scope(self):
        plan = FaultPlan.parse("kill:elkan:shard=1:iter=2")
        (fault,) = plan.faults
        assert fault.kind == "kill"
        assert fault.match == "elkan"
        assert fault.shard == 1
        assert fault.iteration == 2
        assert fault.shard_scoped

    def test_parse_scope_composes_with_positional_arg(self):
        plan = FaultPlan.parse("transient:lloyd:2:shard=0")
        (fault,) = plan.faults
        assert fault.times == 2 and fault.shard == 0 and fault.iteration is None

    def test_parse_unknown_scope_field_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan.parse("kill:elkan:node=1")

    def test_negative_scope_rejected(self):
        with pytest.raises(ValidationError):
            Fault(kind="kill", shard=-1)
        with pytest.raises(ValidationError):
            Fault(kind="kill", iteration=-1)

    def test_unscoped_fault_is_not_shard_scoped(self):
        assert not Fault(kind="kill").shard_scoped

    def test_matches_shard_semantics(self):
        both = Fault(kind="raise", shard=1, iteration=2)
        assert both.matches_shard(1, 2)
        assert not both.matches_shard(0, 2)
        assert not both.matches_shard(1, 3)
        shard_only = Fault(kind="raise", shard=1)
        assert shard_only.matches_shard(1, 0) and shard_only.matches_shard(1, 99)
        iter_only = Fault(kind="raise", iteration=2)
        assert iter_only.matches_shard(0, 2) and iter_only.matches_shard(7, 2)

    def test_apply_skips_shard_scoped_rules(self):
        # Harness-level injection must never fire a rule that targets a
        # shard worker — the scope would be meaningless there.
        plan = FaultPlan.parse("raise:lloyd:shard=0")
        plan.apply(KEY, 1)  # must not raise

    def test_apply_shard_fires_on_matching_scope_only(self):
        plan = FaultPlan.parse("raise:lloyd:shard=1:iter=2")
        plan.apply_shard(KEY, shard=0, iteration=2, attempt=1)
        plan.apply_shard(KEY, shard=1, iteration=1, attempt=1)
        with pytest.raises(InjectedFaultError):
            plan.apply_shard(KEY, shard=1, iteration=2, attempt=1)

    def test_apply_shard_respects_run_key_match(self):
        plan = FaultPlan.parse("raise:elkan:shard=0")
        plan.apply_shard(KEY, shard=0, iteration=0, attempt=1)  # lloyd key
        elkan_key = RunKey(algorithm="elkan", dataset="toy", n=100, d=4, k=5,
                           seed=0, max_iter=10)
        with pytest.raises(InjectedFaultError):
            plan.apply_shard(elkan_key, shard=0, iteration=0, attempt=1)

    def test_unscoped_rule_hits_every_shard(self):
        plan = FaultPlan.parse("transient:lloyd:1")
        for shard in (0, 1, 5):
            with pytest.raises(TransientError):
                plan.apply_shard(KEY, shard=shard, iteration=0, attempt=1)
            # times=1: second attempt on the same shard task passes
            plan.apply_shard(KEY, shard=shard, iteration=0, attempt=2)
