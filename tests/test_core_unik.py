"""UniK-specific behavior: traversal modes, object bookkeeping, incremental
refinement, and the adaptive switch."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.core.lloyd import LloydKMeans
from repro.core.unik import UniKKMeans
from repro.datasets import make_blobs, make_grid_clusters


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(700, 6, 8, seed=41)
    return X


class TestConstruction:
    def test_rejects_unknown_traversal(self):
        with pytest.raises(ConfigurationError, match="traversal"):
            UniKKMeans(traversal="sideways")

    def test_rejects_unknown_index(self):
        with pytest.raises(ConfigurationError, match="unknown index"):
            UniKKMeans(index="quad-tree")

    @pytest.mark.parametrize("index", ["ball-tree", "m-tree", "hkt", "cover-tree"])
    def test_all_ball_shaped_indexes_supported(self, index, data, centroids_factory):
        C0 = centroids_factory(data, 6)
        base = LloydKMeans().fit(data, 6, initial_centroids=C0, max_iter=40)
        result = UniKKMeans(index=index).fit(data, 6, initial_centroids=C0, max_iter=40)
        np.testing.assert_array_equal(result.labels, base.labels)


class TestObjectBookkeeping:
    def test_counts_always_total_n(self, data):
        algo = UniKKMeans(traversal="single")
        result = algo.fit(data, 8, seed=0, max_iter=10)
        assert algo._counts.sum() == len(data)
        covered = sum(
            obj.node.num if obj.node is not None else 1 for obj in algo._objects
        )
        assert covered == len(data)

    def test_sums_match_labels(self, data):
        algo = UniKKMeans(traversal="single")
        result = algo.fit(data, 8, seed=0, max_iter=10)
        for j in range(8):
            members = data[result.labels == j]
            if len(members):
                np.testing.assert_allclose(algo._sums[j], members.sum(axis=0), atol=1e-6)
            assert algo._counts[j] == len(members)

    def test_assembled_data_keeps_node_objects(self):
        # On tightly assembled data, most of the tree should survive as
        # whole-node objects — the batch pruning the paper credits UniK with.
        X = make_grid_clusters(800, 2, side=4, jitter=0.01, seed=3)
        algo = UniKKMeans(traversal="single")
        result = algo.fit(X, 16, seed=0, max_iter=10)
        assert result.extras["node_objects"] > 0
        assert result.extras["objects"] < len(X) / 2

    def test_refinement_reads_no_points(self, data):
        result = UniKKMeans(traversal="single").fit(data, 8, seed=0, max_iter=10)
        # Incremental sum-vector refinement: every point access happens in
        # assignment, none in refinement.  Check per-iteration: refinement
        # adds no point accesses beyond the assignment's.
        lloyd = LloydKMeans(refinement="rescan").fit(data, 8, seed=0, max_iter=10)
        per_iter_lloyd = lloyd.counters.point_accesses / lloyd.n_iter
        # Lloyd rescan pays n per iteration on top of n*k; UniK pays none.
        assert result.refinement_time < lloyd.refinement_time * 5  # sanity


class TestTraversalModes:
    def test_single_keeps_objects_across_iterations(self, data):
        algo = UniKKMeans(traversal="single")
        algo.fit(data, 8, seed=0, max_iter=10)
        assert algo._mode == "single"

    def test_multiple_rebuilds_each_iteration(self, data):
        algo = UniKKMeans(traversal="multiple")
        result = algo.fit(data, 8, seed=0, max_iter=10)
        assert result.extras["resolved_mode"] == "multiple"

    def test_adaptive_resolves_to_some_mode(self, data):
        algo = UniKKMeans(traversal="adaptive")
        result = algo.fit(data, 8, seed=0, max_iter=10)
        assert result.extras["resolved_mode"] in ("single", "multiple", "adaptive")

    def test_modes_agree_on_result(self, data, centroids_factory):
        C0 = centroids_factory(data, 10)
        results = [
            UniKKMeans(traversal=mode).fit(data, 10, initial_centroids=C0, max_iter=40)
            for mode in ("single", "multiple", "adaptive")
        ]
        for result in results[1:]:
            np.testing.assert_array_equal(result.labels, results[0].labels)


class TestGroupConfiguration:
    def test_t_defaults_to_ceil_k_over_10(self, data):
        algo = UniKKMeans()
        algo.fit(data, 25, seed=0, max_iter=3)
        assert algo.groups.t == 3

    def test_t_equals_k_supported(self, data, centroids_factory):
        C0 = centroids_factory(data, 15)
        base = LloydKMeans().fit(data, 15, initial_centroids=C0, max_iter=40)
        result = UniKKMeans(t=15).fit(data, 15, initial_centroids=C0, max_iter=40)
        np.testing.assert_array_equal(result.labels, base.labels)

    def test_extras_report_groups(self, data):
        result = UniKKMeans(t=4).fit(data, 12, seed=0, max_iter=3)
        assert result.extras["groups"] == 4


class TestNodeBoundInheritance:
    def test_leaf_psi_cached_for_all_leaves(self, data):
        algo = UniKKMeans()
        algo.fit(data, 5, seed=0, max_iter=2)
        for leaf in algo.tree.leaves():
            psis = algo._leaf_psi[id(leaf)]
            assert len(psis) == leaf.num
            # psi is the exact point-to-pivot distance
            dists = np.linalg.norm(data[leaf.point_indices] - leaf.pivot, axis=1)
            np.testing.assert_allclose(psis, dists, atol=1e-9)
