"""Shared fixtures: small deterministic datasets and initializations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import make_blobs, make_spatial, make_uniform


@pytest.fixture(scope="session")
def blobs_small():
    """Well-clustered mid-dimensional blobs: 400 x 6, 5 components."""
    X, _ = make_blobs(400, 6, 5, seed=11)
    return X


@pytest.fixture(scope="session")
def blobs_medium():
    """Larger blobs used by exactness sweeps: 900 x 10, 8 components."""
    X, _ = make_blobs(900, 10, 8, seed=13)
    return X


@pytest.fixture(scope="session")
def spatial_small():
    """Low-dimensional spatial data (NYC-like hot spots): 600 x 2."""
    return make_spatial(600, hotspots=15, seed=17)


@pytest.fixture(scope="session")
def uniform_small():
    """Unstructured uniform data — pruning worst case: 300 x 4."""
    return make_uniform(300, 4, seed=19)


@pytest.fixture
def centroids_factory():
    """Factory producing shared k-means++ initializations."""

    def factory(X: np.ndarray, k: int, seed: int = 0) -> np.ndarray:
        return init_kmeans_plus_plus(X, k, seed=seed)

    return factory
